//! The committed `EXPERIMENTS.md`: the paper's full evaluation rendered
//! from the result store as one regenerable, deterministic document.
//!
//! `snug report --experiments-md` renders it; `--check` re-renders and
//! fails if the committed file differs (the staleness gate CI runs).
//! The output is a pure function of the stored results and the spec —
//! no timestamps, hostnames or float formatting that could differ
//! between machines — so re-rendering against an unchanged store is
//! byte-identical.

use crate::report::{per_combo_table, FIGURES};
use crate::spec::{BudgetPreset, SweepSpec, SCHEMA_VERSION};
use snug_core::{table3, OverheadParams};
use snug_experiments::{best_cc_index, figure_table, summarize, ComboResult, SchemePoint};
use snug_metrics::Table;

/// Default path of the committed document, relative to the repo root.
pub const EXPERIMENTS_FILE: &str = "EXPERIMENTS.md";

/// The CLI flags that reproduce `budget` on `snug sweep` / `snug report
/// --experiments-md` (empty for the canonical `--mid`, which is the
/// experiments-md default).
fn budget_flags(budget: BudgetPreset) -> String {
    match budget {
        BudgetPreset::Quick => " --quick".into(),
        BudgetPreset::Mid => String::new(),
        BudgetPreset::Eval => " --eval".into(),
        BudgetPreset::Custom {
            warmup_cycles,
            measure_cycles,
        } => format!(" --warmup {warmup_cycles} --measure {measure_cycles}"),
    }
}

/// Render the full evaluation document from assembled results. A pure
/// function of `(spec, results)` — nothing outside the rendered sweep
/// (other store entries, timestamps, machine state) reaches the output,
/// so the staleness check only trips when the rendered data changes.
pub fn render_experiments_md(spec: &SweepSpec, results: &[ComboResult]) -> String {
    let cfg = spec.compare_config();
    let flags = budget_flags(spec.budget);
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — the SNUG paper evaluation\n\n");
    out.push_str(&format!(
        "> **Generated file — do not edit.** Rendered from the result store by\n\
         > `snug report --experiments-md`. Regenerate after a sweep with:\n\
         >\n\
         > ```sh\n\
         > snug sweep{flags} && snug report --experiments-md{flags}\n\
         > ```\n\
         >\n\
         > CI runs `snug report --experiments-md --check`, which fails if this\n\
         > file no longer matches what the committed store renders to.\n\n",
    ));
    out.push_str(
        "The five L2 organisations of `conf_ipps_ZhanJS10` — L2P (private\n\
         baseline), L2S (shared), CC(Best) (Cooperative Caching, best spill\n\
         probability per combination), DSR (Dynamic Spill-Receive) and SNUG —\n\
         compared over the 21 quad-core workload combinations of Table 8.\n\
         All metrics are normalised to L2P; class rows are geometric means.\n\n",
    );

    out.push_str(
        "**Reading the results.** Spilling schemes beat the private baseline\n\
         on the capacity-sensitive mixed classes (C3/C4/C6), SNUG matches or\n\
         edges out DSR on average (its per-set grouping pays off most on C4,\n\
         the 2×A + B + C mix), and L2S is far worst everywhere —\n\
         interference at shared-cache granularity. One knowing deviation:\n\
         CC(Best) is an *oracle* — per §4.1 it re-runs every combination at\n\
         five spill probabilities and keeps the winner after the fact — and\n\
         under the synthetic workload models that post-hoc selection scores\n\
         higher relative to SNUG than the paper's Fig. 9 reports for real\n\
         SPEC traces.\n\n",
    );
    if spec.budget == BudgetPreset::Mid {
        out.push_str(
            "This document uses the calibrated `--mid` budget (the CI-fast\n\
             reproduction — see `examples/calibrate_mid.rs` for how it was\n\
             picked). The stress classes C1/C2 separate only at the larger\n\
             `--eval` budget.\n\n",
        );
        out.push_str(
            "**Mid-ramp caveat (L2S).** The stop-policy layer records an\n\
             explicit `stop_reason` on every early-exit-capable run, and it\n\
             shows that under `--until-converged` L2S reaches the 3 M-cycle\n\
             ceiling with `stop_reason: ceiling` on every combination — its\n\
             shared cache is still warming when the window ends. The fixed-\n\
             window L2S numbers below are therefore mid-ramp measurements,\n\
             not steady-state plateaus — they understate L2S's eventual\n\
             performance — and per-combo L2S comparisons should be read\n\
             with that in mind (`snug report --until-converged` prints the\n\
             per-combo stop summary).\n\n",
        );
    }
    out.push_str("## Figures 9–11: per-class comparison\n\n");
    for fig in FIGURES {
        let table = figure_table(&summarize(results, fig), fig);
        push_table(&mut out, &table);
    }

    out.push_str("## Table 8: per-combination detail\n\n");
    push_table(&mut out, &per_combo_table(results));

    out.push_str("## CC spill sweep: winning probability per combination\n\n");
    push_table(&mut out, &cc_best_table(results));

    out.push_str("## Storage overhead (§3.4, Tables 2–3)\n\n");
    out.push_str(
        "SNUG's only storage cost is the shadow tag array plus the per-set\n\
         counters; Formula (6) relative to the L2 slice it monitors:\n\n",
    );
    push_table(&mut out, &overhead_table());

    out.push_str("## Provenance\n\n");
    let plan = cfg.plan;
    out.push_str(&format!(
        "- Key schema: `{SCHEMA_VERSION}` (one content-addressed job per\n\
         \x20 (combination, scheme point); a scheme-parameter edit invalidates\n\
         \x20 only that scheme's jobs)\n\
         - Budget: `{}` — {} warm-up + {} measured cycles per simulation;\n\
         \x20 SNUG stages {} + {} cycles\n\
         - Sweep: {} combinations × {} scheme points = {} unit jobs, all\n\
         \x20 served from `results/store.jsonl`\n",
        spec.budget.label(),
        plan.warmup_cycles,
        plan.measure_cycles(),
        cfg.snug.stage1_cycles,
        cfg.snug.stage2_cycles,
        results.len(),
        SchemePoint::COUNT,
        results.len() * SchemePoint::COUNT,
    ));
    out
}

fn push_table(out: &mut String, table: &Table) {
    out.push_str(&table.to_markdown());
    out.push('\n');
}

/// One row per combo: the spill probability CC(Best) settled on and its
/// normalised throughput (§4.1's per-combination oracle selection).
fn cc_best_table(results: &[ComboResult]) -> Table {
    let mut t = Table::new(
        "CC(Best) selection",
        vec![
            "Combination".to_string(),
            "Class".to_string(),
            "Best spill p".to_string(),
            "Throughput".to_string(),
        ],
    );
    for r in results {
        let (p, tp) = best_cc_index(&r.cc_sweep)
            .map(|i| r.cc_sweep[i])
            .unwrap_or((0.0, 1.0));
        t.push_row(vec![
            r.label.clone(),
            r.class.name().to_string(),
            format!("{:.0}%", p * 100.0),
            format!("{tp:.3}"),
        ]);
    }
    t
}

/// Tables 2–3 as one table: overhead across address widths and line
/// sizes at the paper's 1 MB, 16-way geometry.
fn overhead_table() -> Table {
    let mut t = Table::new(
        "SNUG storage overhead",
        vec![
            "Address bits".to_string(),
            "Line size".to_string(),
            "Shadow bits/set".to_string(),
            "Overhead".to_string(),
        ],
    );
    for (addr, block, overhead) in table3() {
        let params = OverheadParams {
            address_bits: addr,
            block_bytes: block,
            ..OverheadParams::paper()
        };
        t.push_row(vec![
            format!("{addr}"),
            format!("{block} B"),
            format!("{}", params.shadow_set_bits()),
            format!("{:.2}%", overhead * 100.0),
        ]);
    }
    t
}

/// The outcome of `--check`: either the committed file matches the
/// rendered document or it is stale/missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The committed file is byte-identical to the rendered document.
    Fresh,
    /// The committed file differs (first differing line, 1-based).
    Stale(usize),
    /// The committed file does not exist.
    Missing,
}

/// Compare a rendered document against the committed file contents.
pub fn check_experiments_md(rendered: &str, committed: Option<&str>) -> CheckOutcome {
    match committed {
        None => CheckOutcome::Missing,
        Some(text) if text == rendered => CheckOutcome::Fresh,
        Some(text) => {
            let line = rendered
                .lines()
                .zip(text.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| rendered.lines().count().min(text.lines().count()) + 1);
            CheckOutcome::Stale(line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snug_experiments::SchemeResult;
    use snug_metrics::MetricSet;
    use snug_workloads::ComboClass;

    fn fake(label: &str, class: ComboClass, tp: f64) -> ComboResult {
        let mk = |name: &str, t: f64| SchemeResult {
            scheme: name.into(),
            metrics: MetricSet {
                throughput: t,
                aws: t,
                fair: t,
            },
            ipcs: vec![1.0; 4],
        };
        ComboResult {
            label: label.into(),
            class,
            baseline_ipcs: vec![1.0; 4],
            schemes: vec![
                mk("L2S", 0.4),
                mk("CC(Best)", 1.02),
                mk("DSR", 1.03),
                mk("SNUG", tp),
            ],
            cc_sweep: vec![(0.0, 1.0), (0.5, 1.02), (1.0, 1.01)],
        }
    }

    fn render_sample() -> String {
        let spec = SweepSpec::full(BudgetPreset::Mid);
        let results = vec![
            fake("a+b+c+d", ComboClass::C1, 1.05),
            fake("e+f+g+h", ComboClass::C5, 1.08),
        ];
        render_experiments_md(&spec, &results)
    }

    #[test]
    fn document_has_all_sections_and_is_deterministic() {
        let md = render_sample();
        for needle in [
            "# EXPERIMENTS",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Table 8",
            "CC(Best) selection",
            "Storage overhead",
            "## Provenance",
            SCHEMA_VERSION,
            "Budget: `mid`",
        ] {
            assert!(md.contains(needle), "missing {needle:?}");
        }
        assert_eq!(md, render_sample(), "byte-identical re-render");
    }

    #[test]
    fn non_mid_budgets_render_their_own_flags_and_skip_the_mid_note() {
        let spec = SweepSpec::full(BudgetPreset::Eval);
        let results = vec![fake("a+b+c+d", ComboClass::C1, 1.05)];
        let md = render_experiments_md(&spec, &results);
        assert!(md.contains("snug sweep --eval && snug report --experiments-md --eval"));
        assert!(md.contains("Budget: `eval`"));
        assert!(
            !md.contains("calibrated `--mid` budget"),
            "mid narrative must not leak into an eval document"
        );
    }

    #[test]
    fn cc_best_table_picks_first_maximum() {
        let results = vec![fake("a+b+c+d", ComboClass::C3, 1.0)];
        let t = cc_best_table(&results);
        assert!(t.to_markdown().contains("50%"), "0.5 wins the sample sweep");
    }

    #[test]
    fn check_distinguishes_fresh_stale_missing() {
        let md = render_sample();
        assert_eq!(check_experiments_md(&md, Some(&md)), CheckOutcome::Fresh);
        assert_eq!(check_experiments_md(&md, None), CheckOutcome::Missing);
        let stale = md.replacen("EXPERIMENTS", "OLD", 1);
        assert!(matches!(
            check_experiments_md(&md, Some(&stale)),
            CheckOutcome::Stale(_)
        ));
    }

    #[test]
    fn overhead_rows_match_table3() {
        let t = overhead_table();
        let md = t.to_markdown();
        assert!(md.contains("3.85%"), "paper baseline overhead ≈3.9%: {md}");
        assert_eq!(t.len(), 4, "2 address widths x 2 line sizes");
    }
}
