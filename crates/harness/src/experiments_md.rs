//! The committed `EXPERIMENTS.md`: the paper's full evaluation rendered
//! from the result store as one regenerable, deterministic document.
//!
//! `snug report --experiments-md` renders it; `--check` re-renders and
//! fails if the committed file differs (the staleness gate CI runs).
//! The output is a pure function of the stored results and the spec —
//! no timestamps, hostnames or float formatting that could differ
//! between machines — so re-rendering against an unchanged store is
//! byte-identical.

use crate::report::{per_combo_table, FIGURES};
use crate::spec::{BudgetPreset, StopPreset, SweepSpec, SCHEMA_VERSION};
use snug_core::{table3, OverheadParams};
use snug_experiments::{best_cc_index, figure_table, summarize, ComboResult, SchemePoint};
use snug_metrics::{geomean, Table};

/// Default path of the committed document, relative to the repo root.
pub const EXPERIMENTS_FILE: &str = "EXPERIMENTS.md";

/// Default path of the committed eval-scale document, relative to the
/// repo root.
pub const EXPERIMENTS_EVAL_FILE: &str = "EXPERIMENTS_EVAL.md";

/// Convergence sample window (cycles) the committed eval sweep uses.
/// Calibrated at the eval budget by `examples/calibrate_eval.rs`: at
/// this window (a tenth of the 6.3 M-cycle ceiling) and epsilon, 16 of
/// 21 combos converge before the ceiling, ~18% of the budgeted cycles
/// are saved, and the spilling-scheme Fig. 9 geomeans track the
/// fixed-budget reference within 0.006 (only the ever-ramping L2S reads
/// lower — the documented mid-ramp caveat). A finer window (315 k)
/// saved 35% but drifted SNUG by 0.018; a coarser one (1.26 M) never
/// converged at all.
pub const EVAL_CONVERGED_WINDOW: u64 = 630_000;

/// Relative spread threshold paired with [`EVAL_CONVERGED_WINDOW`].
pub const EVAL_CONVERGED_REL_EPSILON: f64 = 0.02;

/// The sweep `EXPERIMENTS_EVAL.md` is defined over: the full Table 8
/// at the eval budget with convergence-based early exit pinned to the
/// calibrated window/epsilon. Pinning the convergence knobs (rather
/// than leaving them `None`) keeps the committed store keys stable even
/// if the *defaults* are ever re-derived.
pub fn eval_converged_spec() -> SweepSpec {
    let mut spec = SweepSpec::full(BudgetPreset::Eval);
    spec.stop = StopPreset::Converged {
        window_cycles: Some(EVAL_CONVERGED_WINDOW),
        rel_epsilon: Some(EVAL_CONVERGED_REL_EPSILON),
    };
    spec
}

/// The CLI flags that reproduce `budget` on `snug sweep` / `snug report
/// --experiments-md` (empty for the canonical `--mid`, which is the
/// experiments-md default).
fn budget_flags(budget: BudgetPreset) -> String {
    match budget {
        BudgetPreset::Quick => " --quick".into(),
        BudgetPreset::Mid => String::new(),
        BudgetPreset::Eval => " --eval".into(),
        BudgetPreset::Custom {
            warmup_cycles,
            measure_cycles,
        } => format!(" --warmup {warmup_cycles} --measure {measure_cycles}"),
    }
}

/// Render the full evaluation document from assembled results. A pure
/// function of `(spec, results)` — nothing outside the rendered sweep
/// (other store entries, timestamps, machine state) reaches the output,
/// so the staleness check only trips when the rendered data changes.
pub fn render_experiments_md(spec: &SweepSpec, results: &[ComboResult]) -> String {
    let cfg = spec.compare_config();
    let flags = budget_flags(spec.budget);
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — the SNUG paper evaluation\n\n");
    out.push_str(&format!(
        "> **Generated file — do not edit.** Rendered from the result store by\n\
         > `snug report --experiments-md`. Regenerate after a sweep with:\n\
         >\n\
         > ```sh\n\
         > snug sweep{flags} && snug report --experiments-md{flags}\n\
         > ```\n\
         >\n\
         > CI runs `snug report --experiments-md --check`, which fails if this\n\
         > file no longer matches what the committed store renders to.\n\n",
    ));
    out.push_str(
        "The five L2 organisations of `conf_ipps_ZhanJS10` — L2P (private\n\
         baseline), L2S (shared), CC(Best) (Cooperative Caching, best spill\n\
         probability per combination), DSR (Dynamic Spill-Receive) and SNUG —\n\
         compared over the 21 quad-core workload combinations of Table 8.\n\
         All metrics are normalised to L2P; class rows are geometric means.\n\n",
    );

    out.push_str(
        "**Reading the results.** Spilling schemes beat the private baseline\n\
         on the capacity-sensitive mixed classes (C3/C4/C6), SNUG matches or\n\
         edges out DSR on average (its per-set grouping pays off most on C4,\n\
         the 2×A + B + C mix), and L2S is far worst everywhere —\n\
         interference at shared-cache granularity. One knowing deviation:\n\
         CC(Best) is an *oracle* — per §4.1 it re-runs every combination at\n\
         five spill probabilities and keeps the winner after the fact — and\n\
         under the synthetic workload models that post-hoc selection scores\n\
         higher relative to SNUG than the paper's Fig. 9 reports for real\n\
         SPEC traces.\n\n",
    );
    if spec.budget == BudgetPreset::Mid {
        out.push_str(
            "This document uses the calibrated `--mid` budget (the CI-fast\n\
             reproduction — see `examples/calibrate_mid.rs` for how it was\n\
             picked). The stress classes C1/C2 separate only at the larger\n\
             `--eval` budget.\n\n",
        );
        out.push_str(
            "**Mid-ramp caveat (L2S).** The stop-policy layer records an\n\
             explicit `stop_reason` on every early-exit-capable run, and it\n\
             shows that under `--until-converged` L2S reaches the 3 M-cycle\n\
             ceiling with `stop_reason: ceiling` on every combination — its\n\
             shared cache is still warming when the window ends. The fixed-\n\
             window L2S numbers below are therefore mid-ramp measurements,\n\
             not steady-state plateaus — they understate L2S's eventual\n\
             performance — and per-combo L2S comparisons should be read\n\
             with that in mind (`snug report --until-converged` prints the\n\
             per-combo stop summary).\n\n",
        );
    }
    out.push_str("## Figures 9–11: per-class comparison\n\n");
    for fig in FIGURES {
        let table = figure_table(&summarize(results, fig), fig);
        push_table(&mut out, &table);
    }

    out.push_str("## Table 8: per-combination detail\n\n");
    push_table(&mut out, &per_combo_table(results));

    out.push_str("## CC spill sweep: winning probability per combination\n\n");
    push_table(&mut out, &cc_best_table(results));

    out.push_str("## Storage overhead (§3.4, Tables 2–3)\n\n");
    out.push_str(
        "SNUG's only storage cost is the shadow tag array plus the per-set\n\
         counters; Formula (6) relative to the L2 slice it monitors:\n\n",
    );
    push_table(&mut out, &overhead_table());

    out.push_str("## Provenance\n\n");
    let plan = cfg.plan;
    out.push_str(&format!(
        "- Key schema: `{SCHEMA_VERSION}` (one content-addressed job per\n\
         \x20 (combination, scheme point); a scheme-parameter edit invalidates\n\
         \x20 only that scheme's jobs)\n\
         - Budget: `{}` — {} warm-up + {} measured cycles per simulation;\n\
         \x20 SNUG stages {} + {} cycles\n\
         - Sweep: {} combinations × {} scheme points = {} unit jobs, all\n\
         \x20 served from `results/store.jsonl`\n",
        spec.budget.label(),
        plan.warmup_cycles,
        plan.measure_cycles(),
        cfg.snug.stage1_cycles,
        cfg.snug.stage2_cycles,
        results.len(),
        SchemePoint::COUNT,
        results.len() * SchemePoint::COUNT,
    ));
    out
}

/// Render the committed eval-scale document: the converged eval sweep
/// with the paper's Fig. 9 head-to-head — does SNUG overtake the
/// post-hoc CC(Best) oracle once the stress classes get room to
/// separate? Pure in `(spec, results, stop_summary)` like
/// [`render_experiments_md`], so `--check` only trips on data changes.
pub fn render_experiments_eval_md(
    spec: &SweepSpec,
    results: &[ComboResult],
    stop_summary: Option<&Table>,
) -> String {
    let cfg = spec.compare_config();
    let mut out = String::new();
    out.push_str("# EXPERIMENTS_EVAL — the eval-scale converged truth\n\n");
    out.push_str(&format!(
        "> **Generated file — do not edit.** Rendered from the result store by\n\
         > `snug report --experiments-eval-md`. Regenerate after the eval sweep:\n\
         >\n\
         > ```sh\n\
         > snug sweep --eval --until-converged --window {EVAL_CONVERGED_WINDOW} \\\n\
         >     --rel-eps {EVAL_CONVERGED_REL_EPSILON} --jobs 0\n\
         > snug report --experiments-eval-md\n\
         > ```\n\
         >\n\
         > CI runs `snug report --experiments-eval-md --check`, which fails if\n\
         > this file no longer matches what the committed store renders to.\n\n",
    ));
    out.push_str(
        "`EXPERIMENTS.md` reproduces the paper at the CI-fast `--mid` budget,\n\
         where the stress classes C1/C2 have not yet separated and the CC(Best)\n\
         oracle's post-hoc selection looks strongest. This document is the\n\
         *eval-scale* companion: the same 21 Table 8 combinations at the\n\
         paper-faithful `--eval` budget (600 k warm-up + 6.3 M measured-cycle\n\
         ceiling), with convergence-based early exit so each combination runs\n\
         exactly as long as its baseline-paced window needs.\n\n",
    );

    out.push_str("## The Fig. 9 question: does SNUG overtake CC(Best)?\n\n");
    out.push_str(&eval_verdict_paragraph(results));
    push_table(&mut out, &eval_verdict_table(results));

    out.push_str("## Figures 9–11: per-class comparison\n\n");
    for fig in FIGURES {
        let table = figure_table(&summarize(results, fig), fig);
        push_table(&mut out, &table);
    }

    out.push_str("## Table 8: per-combination detail\n\n");
    push_table(&mut out, &per_combo_table(results));

    out.push_str("## CC spill sweep: winning probability per combination\n\n");
    push_table(&mut out, &cc_best_table(results));

    if let Some(table) = stop_summary {
        out.push_str("## Convergence: per-combo windows and stop reasons\n\n");
        push_table(&mut out, table);
        out.push_str(crate::report::CEILING_FOOTNOTE);
        out.push_str("\n\n");
    }

    out.push_str("## Provenance\n\n");
    let plan = cfg.plan;
    out.push_str(&format!(
        "- Key schema: `{SCHEMA_VERSION}` (one content-addressed job per\n\
         \x20 (combination, scheme point); converged runs are keyed apart from\n\
         \x20 the canonical fixed-window entries)\n\
         - Budget: `{}` — {} warm-up + {} measured-cycle ceiling per\n\
         \x20 simulation; SNUG stages {} + {} cycles\n\
         - Convergence: window {} cycles, relative epsilon {}\n\
         \x20 (`examples/calibrate_eval.rs`)\n\
         - Sweep: {} combinations × {} scheme points = {} unit jobs, all\n\
         \x20 served from `results/store.jsonl`\n",
        spec.budget_label(),
        plan.warmup_cycles,
        plan.measure_cycles(),
        cfg.snug.stage1_cycles,
        cfg.snug.stage2_cycles,
        EVAL_CONVERGED_WINDOW,
        EVAL_CONVERGED_REL_EPSILON,
        results.len(),
        SchemePoint::COUNT,
        results.len() * SchemePoint::COUNT,
    ));
    out
}

/// SNUG and CC(Best) normalised throughput per combo, paired. Combos
/// missing either scheme (impossible for sweep-assembled results) are
/// skipped rather than poisoning the geomean.
fn snug_cc_pairs(results: &[ComboResult]) -> Vec<(&ComboResult, f64, f64)> {
    results
        .iter()
        .filter_map(|r| {
            let snug = r.metrics_of("SNUG")?.throughput;
            let cc = r.metrics_of("CC(Best)")?.throughput;
            Some((r, snug, cc))
        })
        .collect()
}

/// The verdict sentence the eval document leads with, computed from the
/// data so the committed answer can never drift from the tables.
fn eval_verdict_paragraph(results: &[ComboResult]) -> String {
    let pairs = snug_cc_pairs(results);
    if pairs.is_empty() {
        return "No results to compare.\n\n".into();
    }
    let snug: Vec<f64> = pairs.iter().map(|&(_, s, _)| s).collect();
    let cc: Vec<f64> = pairs.iter().map(|&(_, _, c)| c).collect();
    let (g_snug, g_cc) = (geomean(&snug), geomean(&cc));
    let wins = pairs.iter().filter(|&&(_, s, c)| s > c).count();
    let verdict = if g_snug > g_cc {
        "**Yes.** At eval scale SNUG overtakes the post-hoc CC(Best) oracle"
    } else {
        "**Not quite.** At eval scale SNUG still trails the post-hoc CC(Best) oracle"
    };
    format!(
        "{verdict}: overall geomean normalised throughput {g_snug:.3} (SNUG)\n\
         vs {g_cc:.3} (CC(Best)), winning {wins} of {} combinations\n\
         head-to-head. CC(Best) re-runs every combination at five spill\n\
         probabilities and keeps the winner after the fact (§4.1), so a tie\n\
         is already a win for SNUG's single adaptive run.\n\n",
        pairs.len(),
    )
}

/// Per-class breakdown of the head-to-head, in first-seen class order
/// (the results vector is already in Table 8 order).
fn eval_verdict_table(results: &[ComboResult]) -> Table {
    let mut t = Table::new(
        "SNUG vs CC(Best) per class",
        vec![
            "Class".to_string(),
            "Combos".to_string(),
            "SNUG wins".to_string(),
            "SNUG geomean".to_string(),
            "CC(Best) geomean".to_string(),
        ],
    );
    let pairs = snug_cc_pairs(results);
    let mut classes: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for (r, snug, cc) in &pairs {
        let name = r.class.name().to_string();
        match classes.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => v.push((*snug, *cc)),
            None => classes.push((name, vec![(*snug, *cc)])),
        }
    }
    for (name, v) in &classes {
        let snug: Vec<f64> = v.iter().map(|&(s, _)| s).collect();
        let cc: Vec<f64> = v.iter().map(|&(_, c)| c).collect();
        let wins = v.iter().filter(|&&(s, c)| s > c).count();
        t.push_row(vec![
            name.clone(),
            format!("{}", v.len()),
            format!("{wins}"),
            format!("{:.3}", geomean(&snug)),
            format!("{:.3}", geomean(&cc)),
        ]);
    }
    if !pairs.is_empty() {
        let snug: Vec<f64> = pairs.iter().map(|&(_, s, _)| s).collect();
        let cc: Vec<f64> = pairs.iter().map(|&(_, _, c)| c).collect();
        let wins = pairs.iter().filter(|&&(_, s, c)| s > c).count();
        t.push_row(vec![
            "AVG".to_string(),
            format!("{}", pairs.len()),
            format!("{wins}"),
            format!("{:.3}", geomean(&snug)),
            format!("{:.3}", geomean(&cc)),
        ]);
    }
    t
}

fn push_table(out: &mut String, table: &Table) {
    out.push_str(&table.to_markdown());
    out.push('\n');
}

/// One row per combo: the spill probability CC(Best) settled on and its
/// normalised throughput (§4.1's per-combination oracle selection).
fn cc_best_table(results: &[ComboResult]) -> Table {
    let mut t = Table::new(
        "CC(Best) selection",
        vec![
            "Combination".to_string(),
            "Class".to_string(),
            "Best spill p".to_string(),
            "Throughput".to_string(),
        ],
    );
    for r in results {
        let (p, tp) = best_cc_index(&r.cc_sweep)
            .map(|i| r.cc_sweep[i])
            .unwrap_or((0.0, 1.0));
        t.push_row(vec![
            r.label.clone(),
            r.class.name().to_string(),
            format!("{:.0}%", p * 100.0),
            format!("{tp:.3}"),
        ]);
    }
    t
}

/// Tables 2–3 as one table: overhead across address widths and line
/// sizes at the paper's 1 MB, 16-way geometry.
fn overhead_table() -> Table {
    let mut t = Table::new(
        "SNUG storage overhead",
        vec![
            "Address bits".to_string(),
            "Line size".to_string(),
            "Shadow bits/set".to_string(),
            "Overhead".to_string(),
        ],
    );
    for (addr, block, overhead) in table3() {
        let params = OverheadParams {
            address_bits: addr,
            block_bytes: block,
            ..OverheadParams::paper()
        };
        t.push_row(vec![
            format!("{addr}"),
            format!("{block} B"),
            format!("{}", params.shadow_set_bits()),
            format!("{:.2}%", overhead * 100.0),
        ]);
    }
    t
}

/// The outcome of `--check`: either the committed file matches the
/// rendered document or it is stale/missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The committed file is byte-identical to the rendered document.
    Fresh,
    /// The committed file differs (first differing line, 1-based).
    Stale(usize),
    /// The committed file does not exist.
    Missing,
}

/// Compare a rendered document against the committed file contents.
pub fn check_experiments_md(rendered: &str, committed: Option<&str>) -> CheckOutcome {
    match committed {
        None => CheckOutcome::Missing,
        Some(text) if text == rendered => CheckOutcome::Fresh,
        Some(text) => {
            let line = rendered
                .lines()
                .zip(text.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| rendered.lines().count().min(text.lines().count()) + 1);
            CheckOutcome::Stale(line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snug_experiments::SchemeResult;
    use snug_metrics::MetricSet;
    use snug_workloads::ComboClass;

    fn fake(label: &str, class: ComboClass, tp: f64) -> ComboResult {
        let mk = |name: &str, t: f64| SchemeResult {
            scheme: name.into(),
            metrics: MetricSet {
                throughput: t,
                aws: t,
                fair: t,
            },
            ipcs: vec![1.0; 4],
        };
        ComboResult {
            label: label.into(),
            class,
            baseline_ipcs: vec![1.0; 4],
            schemes: vec![
                mk("L2S", 0.4),
                mk("CC(Best)", 1.02),
                mk("DSR", 1.03),
                mk("SNUG", tp),
            ],
            cc_sweep: vec![(0.0, 1.0), (0.5, 1.02), (1.0, 1.01)],
        }
    }

    fn render_sample() -> String {
        let spec = SweepSpec::full(BudgetPreset::Mid);
        let results = vec![
            fake("a+b+c+d", ComboClass::C1, 1.05),
            fake("e+f+g+h", ComboClass::C5, 1.08),
        ];
        render_experiments_md(&spec, &results)
    }

    #[test]
    fn document_has_all_sections_and_is_deterministic() {
        let md = render_sample();
        for needle in [
            "# EXPERIMENTS",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Table 8",
            "CC(Best) selection",
            "Storage overhead",
            "## Provenance",
            SCHEMA_VERSION,
            "Budget: `mid`",
        ] {
            assert!(md.contains(needle), "missing {needle:?}");
        }
        assert_eq!(md, render_sample(), "byte-identical re-render");
    }

    #[test]
    fn non_mid_budgets_render_their_own_flags_and_skip_the_mid_note() {
        let spec = SweepSpec::full(BudgetPreset::Eval);
        let results = vec![fake("a+b+c+d", ComboClass::C1, 1.05)];
        let md = render_experiments_md(&spec, &results);
        assert!(md.contains("snug sweep --eval && snug report --experiments-md --eval"));
        assert!(md.contains("Budget: `eval`"));
        assert!(
            !md.contains("calibrated `--mid` budget"),
            "mid narrative must not leak into an eval document"
        );
    }

    #[test]
    fn cc_best_table_picks_first_maximum() {
        let results = vec![fake("a+b+c+d", ComboClass::C3, 1.0)];
        let t = cc_best_table(&results);
        assert!(t.to_markdown().contains("50%"), "0.5 wins the sample sweep");
    }

    #[test]
    fn check_distinguishes_fresh_stale_missing() {
        let md = render_sample();
        assert_eq!(check_experiments_md(&md, Some(&md)), CheckOutcome::Fresh);
        assert_eq!(check_experiments_md(&md, None), CheckOutcome::Missing);
        let stale = md.replacen("EXPERIMENTS", "OLD", 1);
        assert!(matches!(
            check_experiments_md(&md, Some(&stale)),
            CheckOutcome::Stale(_)
        ));
    }

    #[test]
    fn eval_document_computes_the_fig9_verdict_from_the_data() {
        let spec = eval_converged_spec();
        // SNUG at 1.05/1.08 beats the fake CC(Best) at 1.02 everywhere.
        let results = vec![
            fake("a+b+c+d", ComboClass::C1, 1.05),
            fake("e+f+g+h", ComboClass::C5, 1.08),
        ];
        let md = render_experiments_eval_md(&spec, &results, None);
        for needle in [
            "# EXPERIMENTS_EVAL",
            "does SNUG overtake CC(Best)?",
            "**Yes.**",
            "winning 2 of 2 combinations",
            "SNUG vs CC(Best) per class",
            "Budget: `eval+converged`",
            "--window 630000",
            "--rel-eps 0.02",
            "Figure 9",
            "Table 8",
        ] {
            assert!(md.contains(needle), "missing {needle:?}");
        }
        assert_eq!(
            md,
            render_experiments_eval_md(&spec, &results, None),
            "byte-identical re-render"
        );
        // A losing SNUG flips the verdict without touching the template.
        let losing = vec![fake("a+b+c+d", ComboClass::C1, 1.01)];
        let md = render_experiments_eval_md(&spec, &losing, None);
        assert!(md.contains("**Not quite.**"), "losing verdict: {md}");
        assert!(md.contains("winning 0 of 1 combinations"));
    }

    #[test]
    fn eval_document_embeds_the_stop_summary_when_present() {
        let spec = eval_converged_spec();
        let results = vec![fake("a+b+c+d", ComboClass::C1, 1.05)];
        let mut stops = Table::new(
            "Stop summary (per-combo window, baseline-paced)",
            vec!["Combination".to_string(), "Stop".to_string()],
        );
        stops.push_row(vec!["a+b+c+d".to_string(), "converged".to_string()]);
        let md = render_experiments_eval_md(&spec, &results, Some(&stops));
        assert!(md.contains("## Convergence: per-combo windows and stop reasons"));
        assert!(md.contains("Stop summary"));
        let without = render_experiments_eval_md(&spec, &results, None);
        assert!(!without.contains("## Convergence:"));
    }

    #[test]
    fn eval_spec_pins_the_calibrated_convergence_knobs() {
        let spec = eval_converged_spec();
        assert_eq!(spec.budget, BudgetPreset::Eval);
        assert_eq!(
            spec.stop,
            StopPreset::Converged {
                window_cycles: Some(EVAL_CONVERGED_WINDOW),
                rel_epsilon: Some(EVAL_CONVERGED_REL_EPSILON),
            }
        );
        assert!(spec.compare_config().plan.can_stop_early());
    }

    #[test]
    fn overhead_rows_match_table3() {
        let t = overhead_table();
        let md = t.to_markdown();
        assert!(md.contains("3.85%"), "paper baseline overhead ≈3.9%: {md}");
        assert_eq!(t.len(), 4, "2 address widths x 2 line sizes");
    }
}
