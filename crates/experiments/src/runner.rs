//! Parallel sweep driver: run many (combo, scheme) simulations across
//! CPU cores with scoped threads.
//!
//! Each simulation is single-threaded and deterministic; parallelism is
//! across independent simulations, so results are bit-identical to a
//! sequential run.
//!
//! This is the minimal in-crate driver; the `snug-harness` crate layers
//! a work-stealing executor, a content-addressed result store and the
//! `snug` CLI on top of [`run_combo`] for cached, resumable sweeps.

use crate::compare::{run_combo, ComboResult, CompareConfig};
use snug_workloads::Combo;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `run_combo` for every combination, in parallel over up to
/// `threads` workers (0 = one per available CPU). Results come back in
/// input order.
pub fn run_all(combos: &[Combo], cfg: &CompareConfig, threads: usize) -> Vec<ComboResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(combos.len().max(1));

    let results: Mutex<Vec<Option<ComboResult>>> = Mutex::new(vec![None; combos.len()]);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= combos.len() {
                    return;
                }
                let result = run_combo(&combos[idx], cfg);
                results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[idx] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        // snug-lint: allow(panic-audit, "the scoped pool exits only after every combo index was filled; a combo panic has already propagated via scope join")
        .map(|r| r.expect("every combo completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snug_workloads::{all_combos, ComboClass};

    #[test]
    fn parallel_matches_sequential() {
        // Two small combos, tiny budget: parallel run must equal the
        // sequential result exactly (determinism).
        let combos: Vec<Combo> = all_combos()
            .into_iter()
            .filter(|c| c.class == ComboClass::C5)
            .take(2)
            .collect();
        let mut cfg = CompareConfig::quick();
        cfg.plan = sim_cmp::RunPlan::fixed(20_000, 120_000);
        let seq: Vec<ComboResult> = combos.iter().map(|c| run_combo(c, &cfg)).collect();
        let par = run_all(&combos, &cfg, 2);
        assert_eq!(seq, par);
    }
}
