//! Parallel sweep driver: run many (combo, scheme) simulations across
//! CPU cores with crossbeam scoped threads.
//!
//! Each simulation is single-threaded and deterministic; parallelism is
//! across independent simulations, so results are bit-identical to a
//! sequential run.

use crate::compare::{run_combo, ComboResult, CompareConfig};
use parking_lot::Mutex;
use snug_workloads::Combo;

/// Run `run_combo` for every combination, in parallel over up to
/// `threads` workers (0 = one per available CPU). Results come back in
/// input order.
pub fn run_all(combos: &[Combo], cfg: &CompareConfig, threads: usize) -> Vec<ComboResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    }
    .min(combos.len().max(1));

    let results: Mutex<Vec<Option<ComboResult>>> = Mutex::new(vec![None; combos.len()]);
    let next: Mutex<usize> = Mutex::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let idx = {
                    let mut n = next.lock();
                    if *n >= combos.len() {
                        return;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let result = run_combo(&combos[idx], cfg);
                results.lock()[idx] = Some(result);
            });
        }
    })
    .expect("worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every combo completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snug_workloads::{all_combos, ComboClass};

    #[test]
    fn parallel_matches_sequential() {
        // Two small combos, tiny budget: parallel run must equal the
        // sequential result exactly (determinism).
        let combos: Vec<Combo> = all_combos()
            .into_iter()
            .filter(|c| c.class == ComboClass::C5)
            .take(2)
            .collect();
        let mut cfg = CompareConfig::quick();
        cfg.budget.warmup_cycles = 20_000;
        cfg.budget.measure_cycles = 120_000;
        let seq: Vec<ComboResult> = combos.iter().map(|c| run_combo(c, &cfg)).collect();
        let par = run_all(&combos, &cfg, 2);
        assert_eq!(seq, par);
    }
}
