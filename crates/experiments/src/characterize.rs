//! The set-level capacity-demand characterisation — paper §2.2 and
//! Figures 1–3.
//!
//! Methodology (mirroring the paper): run a benchmark's address stream
//! through the Table 4 L1, feed the L1 misses (the L2 access stream)
//! into a per-set stack-distance profiler with `A_threshold = 32`, slice
//! the stream into sampling intervals, and report each interval's
//! normalised bucket sizes (Formula 5).

use serde::{Deserialize, Serialize};
use sim_cache::{BucketDistribution, DemandParams, SetAssocCache, SetDemandProfiler};
use sim_mem::{Geometry, IntervalClock, OpStream, SamplingPlan};
use snug_workloads::Benchmark;

/// Configuration of one characterisation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizeConfig {
    /// Interval plan (paper: 1000 × 100 K L2 accesses).
    pub plan: SamplingPlan,
    /// Demand quantification parameters (paper: A_thr = 32, M = 8).
    pub params: DemandParams,
    /// L1 geometry filtering the stream (paper Table 4 L1D).
    pub l1: Geometry,
    /// L2 geometry being profiled (paper Table 4 slice).
    pub l2: Geometry,
}

impl CharacterizeConfig {
    /// The paper's full methodology (100 M L2 accesses — minutes of CPU).
    pub fn paper() -> Self {
        CharacterizeConfig {
            plan: SamplingPlan::paper(),
            params: DemandParams::paper(),
            l1: Geometry::paper_l1(),
            l2: Geometry::paper_l2(),
        }
    }

    /// A scaled-down plan with the same structure (for tests/benches):
    /// `intervals` × `accesses` L2 accesses.
    pub fn scaled(intervals: usize, accesses: usize) -> Self {
        CharacterizeConfig {
            plan: SamplingPlan::scaled(intervals, accesses),
            ..Self::paper()
        }
    }
}

/// The result: one bucket distribution per sampling interval — the data
/// behind one of the paper's stacked-area Figures 1–3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandCharacterization {
    /// Benchmark name.
    pub benchmark: String,
    /// Parameters used.
    pub params: DemandParams,
    /// Per-interval distributions.
    pub intervals: Vec<BucketDistribution>,
}

impl DemandCharacterization {
    /// Mean size of bucket `j` (1-based) across all intervals.
    pub fn mean_bucket(&self, j: usize) -> f64 {
        let s: f64 = self.intervals.iter().map(|d| d.sizes[j - 1]).sum();
        s / self.intervals.len() as f64
    }

    /// Mean fraction of sets in the lowest bucket (1–4 blocks).
    pub fn mean_low_demand(&self) -> f64 {
        self.mean_bucket(1)
    }

    /// Mean fraction of sets whose demand exceeds the baseline
    /// associativity (takers under doubling).
    pub fn mean_above_baseline(&self, a_baseline: usize) -> f64 {
        let first = a_baseline / self.params.bucket_width() + 1;
        (first..=self.params.m_buckets)
            .map(|j| self.mean_bucket(j))
            .sum()
    }

    /// Mean non-uniformity spread across intervals (0 = uniform).
    pub fn mean_spread(&self) -> f64 {
        let s: f64 = self.intervals.iter().map(|d| d.spread()).sum();
        s / self.intervals.len() as f64
    }

    /// Render the stacked-distribution series as CSV: one row per
    /// interval, one column per bucket (the exact data of Figs. 1–3).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("interval");
        for j in 1..=self.params.m_buckets {
            let (lo, hi) = self.params.bucket_range(j);
            out.push_str(&format!(",{lo}-{hi}"));
        }
        out.push('\n');
        for (i, d) in self.intervals.iter().enumerate() {
            out.push_str(&(i + 1).to_string());
            for s in &d.sizes {
                out.push_str(&format!(",{s:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Run the characterisation for one benchmark.
pub fn characterize(bench: Benchmark, cfg: &CharacterizeConfig) -> DemandCharacterization {
    let mut stream = bench.spec().stream(cfg.l2, 0);
    characterize_stream(&mut stream, cfg, bench.name())
}

/// Run the characterisation over any op stream.
pub fn characterize_stream(
    stream: &mut dyn OpStream,
    cfg: &CharacterizeConfig,
    name: &str,
) -> DemandCharacterization {
    let mut l1 = SetAssocCache::new(cfg.l1);
    let mut profiler = SetDemandProfiler::new(cfg.l2.num_sets as usize, cfg.params.a_threshold);
    let mut clock = IntervalClock::new(cfg.plan);
    let mut intervals = Vec::with_capacity(cfg.plan.intervals);
    while !clock.finished() {
        let op = stream.next_op();
        let block = op.access.addr.block(cfg.l2.block_bytes);
        // L1 filter: only L1 misses reach the L2 (paper methodology).
        if l1.access(block, op.access.kind.is_write()).hit {
            continue;
        }
        profiler.access(cfg.l2.set_index(block), block);
        if clock.tick().is_some() {
            let params = cfg.params;
            intervals
                .push(profiler.end_interval(|h| BucketDistribution::from_histograms(h, &params)));
        }
    }
    DemandCharacterization {
        benchmark: name.to_string(),
        params: cfg.params,
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(bench: Benchmark) -> DemandCharacterization {
        // Small but big enough for 1024 sets to warm: 8 × 60 K accesses.
        characterize(bench, &CharacterizeConfig::scaled(8, 60_000))
    }

    #[test]
    fn ammp_shows_strong_nonuniformity() {
        let c = quick(Benchmark::Ammp);
        // Fig. 1: ~40 % of sets need 1–4 blocks...
        assert!(
            (c.mean_low_demand() - 0.40).abs() < 0.12,
            "ammp low-demand fraction {:.3}",
            c.mean_low_demand()
        );
        // ...while a large fraction exceeds the 16-way baseline.
        assert!(
            c.mean_above_baseline(16) > 0.30,
            "ammp above-baseline fraction {:.3}",
            c.mean_above_baseline(16)
        );
        assert!(c.mean_spread() > 0.4, "spread {:.3}", c.mean_spread());
    }

    #[test]
    fn applu_is_uniform_low_demand() {
        let c = quick(Benchmark::Applu);
        // Fig. 3: almost all sets require only 1–4 blocks.
        assert!(
            c.mean_low_demand() > 0.95,
            "applu low-demand {:.3}",
            c.mean_low_demand()
        );
        assert!(c.mean_above_baseline(16) < 0.02);
    }

    #[test]
    fn vpr_is_uniform_high_demand() {
        // vpr's pools (22–34 blocks) mostly sit within A_threshold = 32:
        // doubling capacity recovers its far hits, so block_required
        // lands above the 16-way baseline.
        let c = quick(Benchmark::Vpr);
        assert!(
            c.mean_low_demand() < 0.05,
            "vpr low-demand {:.3}",
            c.mean_low_demand()
        );
        assert!(
            c.mean_above_baseline(16) > 0.65,
            "vpr high {:.3}",
            c.mean_above_baseline(16)
        );
    }

    #[test]
    fn mcf_is_uniform_and_saturates_the_threshold() {
        // mcf's pools (44–64 blocks) exceed A_threshold = 32: its random
        // far re-references produce hits at every depth up to the
        // threshold, so block_required saturates high — uniformly across
        // sets (Table 6: class C), with no low-demand (giver) mass.
        let c = quick(Benchmark::Mcf);
        assert!(
            c.mean_low_demand() < 0.1,
            "mcf low-demand {:.3}",
            c.mean_low_demand()
        );
        assert!(
            c.mean_above_baseline(16) > 0.8,
            "mcf saturates high buckets: {:.3}",
            c.mean_above_baseline(16)
        );
    }

    #[test]
    fn distributions_normalised_per_interval() {
        let c = quick(Benchmark::Vortex);
        for d in &c.intervals {
            assert!((d.total() - 1.0).abs() < 1e-9);
        }
        assert_eq!(c.intervals.len(), 8);
    }

    #[test]
    fn csv_has_interval_rows_and_bucket_columns() {
        let c = quick(Benchmark::Gzip);
        let csv = c.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "interval,1-4,5-8,9-12,13-16,17-20,21-24,25-28,29-32"
        );
        assert_eq!(lines.len(), 9, "header + 8 intervals");
    }
}
