//! # snug-experiments — the reproduction harness
//!
//! One module per experiment family:
//!
//! * [`characterize`](mod@characterize) — Figures 1–3: per-interval
//!   set-level capacity-demand distributions;
//! * [`compare`] — Figures 9–11: the five-scheme comparison over the
//!   21 workload combinations, with CC(Best) sweeping §4.1's spill
//!   probabilities;
//! * [`runner`] — parallel sweep driver (deterministic results).
//!
//! Storage-overhead Tables 2–3 are pure arithmetic and live in
//! `snug_core::overhead`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod compare;
pub mod runner;

pub use characterize::{characterize, CharacterizeConfig, DemandCharacterization};
pub use compare::{
    assemble_combo, best_cc_index, figure_table, run_combo, run_point, run_scheme, summarize,
    ClassSummary, ComboResult, CompareConfig, Figure, RunBudget, SchemePoint, SchemeResult,
    SchemeRun, FIGURE_SCHEMES,
};
pub use runner::run_all;
