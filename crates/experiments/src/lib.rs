//! # snug-experiments — the reproduction harness
//!
//! One module per experiment family:
//!
//! * [`characterize`](mod@characterize) — Figures 1–3: per-interval
//!   set-level capacity-demand distributions;
//! * [`compare`] — Figures 9–11: the five-scheme comparison over the
//!   21 workload combinations, with CC(Best) sweeping §4.1's spill
//!   probabilities. Every simulation is driven through a
//!   [`sim_cmp::SimSession`]; `run_scheme`/`run_point` are thin
//!   one-shot wrappers, and `run_cc_points_shared` measures the CC
//!   sweep from one shared warm-up snapshot;
//! * [`trace`] — phase-resolved time series ([`trace::trace_point`])
//!   behind the `snug trace` CLI;
//! * [`runner`] — parallel sweep driver (deterministic results).
//!
//! Storage-overhead Tables 2–3 are pure arithmetic and live in
//! `snug_core::overhead`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod compare;
pub mod runner;
pub mod trace;

pub use characterize::{characterize, CharacterizeConfig, DemandCharacterization};
pub use compare::{
    assemble_combo, best_cc_index, combo_streams, default_window, figure_table, pace_of,
    paced_config, run_cc_points_shared, run_cc_points_shared_phased, run_combo, run_point,
    run_point_paced, run_point_phased, run_scheme, session_for, session_for_org,
    session_for_org_phased, session_for_phased, summarize, ClassSummary, ComboResult,
    CompareConfig, Figure, Pace, SchemePoint, SchemeResult, SchemeRun, StopReason,
    DEFAULT_REL_EPSILON, FIGURE_SCHEMES,
};
pub use runner::run_all;
pub use sim_cmp::{RunPlan, StopSpec};
pub use trace::{default_stride, trace_point, trace_point_phased, TraceSeries};
