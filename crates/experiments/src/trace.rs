//! Phase-resolved time series for one (combo, scheme point) run.
//!
//! The ROADMAP's open question — why the CC(Best) oracle still beats
//! SNUG at scaled budgets, unlike the paper's Fig. 9 — needs visibility
//! *inside* a run: how per-core IPC, the L2 fill mix and spill traffic
//! evolve across SNUG's sampling periods, and what happens to spilled
//! blocks at every G/T relatch (the C1 stranded-spilled-blocks
//! hypothesis). [`trace_point`] records exactly that: a
//! [`sim_cmp::SimSession`] probe fires on a cycle stride and the samples —
//! including the scheme-side [`SchemeEvent`]s SNUG emits at stage
//! boundaries — become a [`TraceSeries`] the harness stores and the
//! `snug trace` CLI renders.

use crate::compare::{session_for_phased, CompareConfig, SchemePoint};
use sim_cmp::{PeriodSample, SchemeEvent, SchemeEventKind};
use snug_metrics::{mean, Table};
use snug_workloads::{Combo, PhaseSchedule};

/// A recorded probe time series for one (combo, scheme point) run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSeries {
    /// The producing point's store label (`"snug"`, `"cc@50%"`, …).
    pub scheme: String,
    /// Probe stride in cycles.
    pub stride: u64,
    /// Warm-up cycles of the run (samples at or below this cycle are
    /// warm-up).
    pub warmup_cycles: u64,
    /// One sample per stride interval, in cycle order.
    pub samples: Vec<PeriodSample>,
}

impl TraceSeries {
    /// Samples inside the measured window.
    pub fn measured(&self) -> impl Iterator<Item = &PeriodSample> {
        self.samples.iter().filter(|s| !s.during_warmup)
    }

    /// Mean throughput (sum of per-core interval IPCs) over the
    /// measured window; 0 if no measured sample was recorded.
    pub fn mean_throughput(&self) -> f64 {
        let tps: Vec<f64> = self.measured().map(|s| s.throughput()).collect();
        if tps.is_empty() {
            0.0
        } else {
            mean(&tps)
        }
    }

    /// Total scheme events recorded (stage transitions, G/T relatches).
    pub fn event_count(&self) -> usize {
        self.samples.iter().map(|s| s.events.len()).sum()
    }

    /// Total workload phase shifts recorded.
    pub fn shift_count(&self) -> usize {
        self.samples.iter().map(|s| s.shifts.len()).sum()
    }

    /// Mean throughput per workload phase over the measured window: the
    /// measured samples split at every sample that recorded a shift
    /// (the straddling sample starts the new phase). One entry for a
    /// stationary run; `boundary + 1` entries once shifts fired inside
    /// the measured window.
    pub fn phase_throughputs(&self) -> Vec<f64> {
        let mut phases: Vec<Vec<f64>> = vec![Vec::new()];
        for s in self.measured() {
            // snug-lint: allow(panic-audit, "phases is seeded with one element and push only grows it")
            if !s.shifts.is_empty() && !phases.last().expect("non-empty").is_empty() {
                phases.push(Vec::new());
            }
            // snug-lint: allow(panic-audit, "phases is seeded with one element and push only grows it")
            phases.last_mut().expect("non-empty").push(s.throughput());
        }
        phases
            .into_iter()
            .map(|tps| if tps.is_empty() { 0.0 } else { mean(&tps) })
            .collect()
    }

    /// Render the series as a table: one row per sample with per-core
    /// IPC, the L2 interval mix and any scheme events.
    pub fn table(&self, label: &str) -> Table {
        let cores = self
            .samples
            .first()
            .map(|s| s.instructions.len())
            .unwrap_or(0);
        let mut headers = vec!["cycle".to_string(), "phase".to_string()];
        headers.extend((0..cores).map(|i| format!("ipc{i}")));
        headers.extend(
            [
                "l2_hits",
                "l2_miss",
                "spill_out",
                "spill_in",
                "retrieved",
                "shadow",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        headers.push("events".to_string());
        let mut t = Table::new(format!("trace {label} [{}]", self.scheme), headers);
        for s in &self.samples {
            let mut row = vec![
                s.cycle.to_string(),
                if s.during_warmup { "warm" } else { "meas" }.to_string(),
            ];
            row.extend(s.ipcs().iter().map(|i| format!("{i:.3}")));
            row.push(s.l2.hits.to_string());
            row.push(s.l2.misses.to_string());
            row.push(s.l2.spills_out.to_string());
            row.push(s.l2.spills_in.to_string());
            row.push(s.l2.retrieved_from_peer.to_string());
            row.push(s.l2.shadow_hits.to_string());
            let mut events = render_events(&s.events);
            if !s.shifts.is_empty() {
                let shifts = s
                    .shifts
                    .iter()
                    .map(|sh| format!("S@{}({})", sh.at_cycle, sh.directive))
                    .collect::<Vec<_>>()
                    .join(" ");
                if events.is_empty() {
                    events = shifts;
                } else {
                    events = format!("{shifts} {events}");
                }
            }
            row.push(events);
            t.push_row(row);
        }
        t
    }
}

/// Compact event rendering: `I@2400000` (identify begins),
/// `G@2100000(takers 12/0/7/3)` (grouped operation begins, per-core
/// taker-set counts just latched).
fn render_events(events: &[SchemeEvent]) -> String {
    events
        .iter()
        .map(|e| match e.kind {
            SchemeEventKind::IdentifyBegin => format!("I@{}", e.cycle),
            SchemeEventKind::GroupedBegin => {
                let takers = e
                    .takers
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join("/");
                format!("G@{}(takers {takers})", e.cycle)
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The default probe stride for a plan: 24 samples across the measured
/// window (at the calibrated `--mid` budget this lands ~2.4 samples
/// inside every SNUG sampling period).
pub fn default_stride(cfg: &CompareConfig) -> u64 {
    (cfg.plan.measure_cycles() / 24).max(1)
}

/// Run one (combo, scheme point) simulation with a recording probe and
/// return its time series. Same simulation semantics as
/// [`crate::run_point`] — the probe only observes.
pub fn trace_point(
    combo: &Combo,
    point: &SchemePoint,
    cfg: &CompareConfig,
    stride: u64,
) -> TraceSeries {
    trace_point_phased(combo, point, cfg, stride, None)
}

/// [`trace_point`] under an optional phase-change schedule: the shifts
/// are applied mid-run and appear as phase-boundary events in the
/// recorded samples ([`PeriodSample::shifts`]), which is how `snug
/// trace --phase-shift` shows a scheme reacting — or failing to react —
/// to a workload change.
pub fn trace_point_phased(
    combo: &Combo,
    point: &SchemePoint,
    cfg: &CompareConfig,
    stride: u64,
    phase: Option<&PhaseSchedule>,
) -> TraceSeries {
    let mut session = session_for_phased(combo, &point.spec(cfg), cfg, phase);
    session.enable_recording(stride);
    let _ = session.run_to_completion();
    TraceSeries {
        scheme: point.label(),
        stride,
        warmup_cycles: cfg.plan.warmup_cycles,
        samples: session.take_series(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::session_for;
    use snug_workloads::all_combos;

    fn tiny_cfg() -> CompareConfig {
        let mut cfg = CompareConfig::quick();
        cfg.plan = sim_cmp::RunPlan::fixed(20_000, 200_000);
        cfg.snug.stage1_cycles = 10_000;
        cfg.snug.stage2_cycles = 40_000;
        cfg
    }

    #[test]
    fn snug_trace_carries_stage_events() {
        let combo = all_combos()[0];
        let cfg = tiny_cfg();
        let series = trace_point(&combo, &SchemePoint::Snug, &cfg, 25_000);
        assert_eq!(series.scheme, "snug");
        assert!(series.samples.len() >= 6, "got {}", series.samples.len());
        assert!(
            series.event_count() >= 3,
            "several stage transitions in 220K cycles, got {}",
            series.event_count()
        );
        let grouped: Vec<&SchemeEvent> = series
            .samples
            .iter()
            .flat_map(|s| &s.events)
            .filter(|e| e.kind == SchemeEventKind::GroupedBegin)
            .collect();
        assert!(!grouped.is_empty());
        assert!(
            grouped.iter().all(|e| e.takers.len() == 4),
            "per-core taker counts latched"
        );
        assert!(series.mean_throughput() > 0.0);
    }

    #[test]
    fn trace_table_renders_all_samples() {
        let combo = all_combos()[0];
        let cfg = tiny_cfg();
        let series = trace_point(&combo, &SchemePoint::L2p, &cfg, 50_000);
        assert_eq!(series.event_count(), 0, "L2P has no staged policy");
        let t = series.table(&combo.label());
        assert_eq!(t.len(), series.samples.len());
        assert!(t.to_markdown().contains("ipc0"));
    }

    #[test]
    fn phased_trace_records_shift_boundaries_and_phase_means() {
        let combo = all_combos()[0];
        let cfg = tiny_cfg();
        let sched = PhaseSchedule::parse("120000:demand=300").unwrap();
        let series = trace_point_phased(&combo, &SchemePoint::Snug, &cfg, 25_000, Some(&sched));
        assert_eq!(series.shift_count(), 1, "one phase boundary recorded");
        let phases = series.phase_throughputs();
        assert_eq!(phases.len(), 2, "one mean per workload phase");
        assert!(phases.iter().all(|t| *t > 0.0), "{phases:?}");
        assert!(
            series
                .table(&combo.label())
                .to_markdown()
                .contains("S@120000(demand=300)"),
            "phase boundary rendered as an event"
        );
        // A stationary trace has a single phase and no shift events.
        let plain = trace_point(&combo, &SchemePoint::Snug, &cfg, 25_000);
        assert_eq!(plain.shift_count(), 0);
        assert_eq!(plain.phase_throughputs().len(), 1);
        assert_ne!(
            plain.mean_throughput(),
            series.mean_throughput(),
            "the shift changed the measured behaviour"
        );
    }

    #[test]
    fn trace_observation_does_not_perturb_results() {
        // The probe only reads: a traced run and an untraced run of the
        // same point retire identical IPCs.
        let combo = all_combos()[3];
        let cfg = tiny_cfg();
        let plain = crate::run_point(&combo, &SchemePoint::Snug, &cfg);
        let mut session = session_for(&combo, &SchemePoint::Snug.spec(&cfg), &cfg);
        session.enable_recording(30_000);
        let traced = session.run_to_completion();
        assert_eq!(traced.ipcs(), plain.ipcs);
    }
}
