//! `snug-repro` — command-line front end for the reproduction harness.
//!
//! ```text
//! snug-repro overhead                   Tables 2-3
//! snug-repro characterize [bench..]     Figures 1-3 (scaled plan)
//! snug-repro compare [--quick]          Figures 9-11 over all 21 combos
//! snug-repro combo <a> <b> <c> <d>      one ad-hoc quad-core mix
//! snug-repro ablate                     E9-E12 ablation sweeps
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's offline dependency
//! set has no CLI crate); everything prints GitHub-flavoured Markdown so
//! output can be pasted into reports.

use snug_core::{table3, OverheadParams, SchemeSpec};
use snug_experiments::{
    characterize, figure_table, run_all, run_scheme, summarize, CharacterizeConfig, CompareConfig,
    Figure,
};
use snug_metrics::{IpcVector, MetricSet};
use snug_workloads::{all_combos, Benchmark, Combo, ComboClass};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("overhead") => overhead(),
        Some("characterize") => characterize_cmd(&args[1..]),
        Some("compare") => compare(args.iter().any(|a| a == "--quick")),
        Some("combo") => combo_cmd(&args[1..]),
        Some("ablate") => ablate(),
        _ => {
            eprintln!(
                "usage: snug-repro <overhead | characterize [bench..] | compare [--quick] | combo <a> <b> <c> <d> | ablate>"
            );
            std::process::exit(2);
        }
    }
}

fn overhead() {
    let p = OverheadParams::paper();
    println!("## Tables 2-3: SNUG storage overhead (Formula 6)\n");
    println!(
        "baseline (32-bit addr, 64 B lines): **{:.2} %** (paper: 3.9 %)\n",
        p.storage_overhead() * 100.0
    );
    println!("| line size | 32-bit | 64-bit (44 used) |");
    println!("|---|---|---|");
    for &block in &[64u64, 128] {
        let get = |addr: u32| {
            table3()
                .into_iter()
                .find(|(a, b, _)| *a == addr && *b == block)
                .map(|(_, _, o)| o * 100.0)
                .unwrap()
        };
        println!("| {block} B | {:.1} % | {:.1} % |", get(32), get(44));
    }
}

fn characterize_cmd(names: &[String]) {
    let benches: Vec<Benchmark> = if names.is_empty() {
        vec![Benchmark::Ammp, Benchmark::Vortex, Benchmark::Applu]
    } else {
        names
            .iter()
            .map(|n| {
                Benchmark::from_name(n).unwrap_or_else(|| {
                    eprintln!("unknown benchmark '{n}'");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let cfg = CharacterizeConfig::scaled(100, 50_000);
    println!("## Figures 1-3: set-level capacity demand (scaled plan)\n");
    println!("| bench | 1-4 blocks | >16 blocks | spread |");
    println!("|---|---|---|---|");
    for b in benches {
        let c = characterize(b, &cfg);
        println!(
            "| {} | {:.1} % | {:.1} % | {:.2} |",
            c.benchmark,
            c.mean_low_demand() * 100.0,
            c.mean_above_baseline(16) * 100.0,
            c.mean_spread()
        );
    }
}

fn compare(quick: bool) {
    let cfg = if quick {
        CompareConfig::quick()
    } else {
        CompareConfig::default_eval()
    };
    let combos = all_combos();
    eprintln!("running {} combos x 8 simulations...", combos.len());
    let results = run_all(&combos, &cfg, 0);
    for fig in [Figure::Throughput, Figure::Aws, Figure::FairSpeedup] {
        println!(
            "{}",
            figure_table(&summarize(&results, fig), fig).to_markdown()
        );
    }
}

fn combo_cmd(names: &[String]) {
    if names.len() != 4 {
        eprintln!("combo needs exactly four benchmark names");
        std::process::exit(2);
    }
    let apps: Vec<Benchmark> = names
        .iter()
        .map(|n| {
            Benchmark::from_name(n).unwrap_or_else(|| {
                eprintln!("unknown benchmark '{n}'");
                std::process::exit(2);
            })
        })
        .collect();
    let combo = Combo {
        class: ComboClass::C3,
        apps: [apps[0], apps[1], apps[2], apps[3]],
    };
    let cfg = CompareConfig::default_eval();
    let base = run_scheme(&combo, &SchemeSpec::L2p, &cfg);
    let base_ipcs = IpcVector::new(base.ipcs());
    println!("## {} (normalised to L2P)\n", combo.label());
    println!("| scheme | throughput | AWS | fair speedup |");
    println!("|---|---|---|---|");
    for spec in [
        SchemeSpec::L2s,
        SchemeSpec::Cc {
            spill_probability: 0.5,
        },
        SchemeSpec::Dsr(cfg.dsr),
        SchemeSpec::Snug(cfg.snug),
    ] {
        let r = run_scheme(&combo, &spec, &cfg);
        let m = MetricSet::compute(&IpcVector::new(r.ipcs()), &base_ipcs);
        println!(
            "| {} | {:.3} | {:.3} | {:.3} |",
            spec, m.throughput, m.aws, m.fair
        );
    }
}

fn ablate() {
    let cfg = CompareConfig::quick();
    let c1 = all_combos()[0];
    let base = run_scheme(&c1, &SchemeSpec::L2p, &cfg).throughput();
    println!("## Ablations on C1 (4 x ammp), normalised throughput\n");
    println!("### E9: index-bit flipping\n");
    println!("| flipping | flip width | throughput |");
    println!("|---|---|---|");
    for (flip, width) in [(false, 1), (true, 1), (true, 2), (true, 3)] {
        let mut s = cfg.snug;
        s.flipping = flip;
        s.flip_width = width;
        let r = run_scheme(&c1, &SchemeSpec::Snug(s), &cfg);
        println!("| {} | {} | {:.3} |", flip, width, r.throughput() / base);
    }
    println!("\n### E10: sampling period lengths\n");
    println!("| stage I | stage II | throughput |");
    println!("|---|---|---|");
    for (s1, s2) in [
        (30_000u64, 120_000u64),
        (60_000, 240_000),
        (120_000, 480_000),
    ] {
        let mut s = cfg.snug;
        s.stage1_cycles = s1;
        s.stage2_cycles = s2;
        let r = run_scheme(&c1, &SchemeSpec::Snug(s), &cfg);
        println!("| {s1} | {s2} | {:.3} |", r.throughput() / base);
    }
    println!("\n### E11: counter width / threshold\n");
    println!("| k | p | throughput |");
    println!("|---|---|---|");
    for (k, p) in [(2u32, 4u16), (3, 8), (4, 8), (5, 8), (4, 16)] {
        let mut s = cfg.snug;
        s.counter_bits = k;
        s.p = p;
        let r = run_scheme(&c1, &SchemeSpec::Snug(s), &cfg);
        println!("| {k} | {p} | {:.3} |", r.throughput() / base);
    }
    println!("\n### E12: CC spill probability\n");
    println!("| p_spill | throughput |");
    println!("|---|---|");
    for &p in &SchemeSpec::CC_SPILL_SWEEP {
        let r = run_scheme(
            &c1,
            &SchemeSpec::Cc {
                spill_probability: p,
            },
            &cfg,
        );
        println!("| {:.0} % | {:.3} |", p * 100.0, r.throughput() / base);
    }
}
