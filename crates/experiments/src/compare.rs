//! The five-scheme comparison behind Figures 9–11.
//!
//! For each workload combination (Table 8) the harness runs L2S,
//! CC (sweeping the spill probabilities of §4.1 and keeping the best —
//! "CC(Best)"), DSR and SNUG, all normalised to an L2P run of the same
//! combination. Class results aggregate with the geometric mean (§5).

use serde::{Deserialize, Serialize};
use sim_cmp::{CmpSystem, SystemConfig, SystemResult};
use sim_mem::OpStream;
use snug_core::{DsrConfig, SchemeSpec, SnugConfig};
use snug_metrics::{geomean, IpcVector, MetricSet, Table};
use snug_workloads::{Combo, ComboClass};

/// How long to run each simulation (in cycles — every core runs the
/// full window, as in the paper's fixed-3 B-cycle methodology).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunBudget {
    /// Unmeasured warm-up cycles.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
}

impl RunBudget {
    /// The default evaluation budget: ~4 SNUG sampling periods under the
    /// default_eval SNUG stage lengths (250 K + 1.25 M cycles).
    pub fn default_eval() -> Self {
        RunBudget {
            warmup_cycles: 600_000,
            measure_cycles: 6_300_000,
        }
    }

    /// A fast budget for tests and smoke benches (pair with the quick
    /// SNUG stage lengths, period 300 K cycles).
    pub fn quick() -> Self {
        RunBudget {
            warmup_cycles: 150_000,
            measure_cycles: 1_200_000,
        }
    }
}

/// Full configuration of a comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Platform (Table 4).
    pub system: SystemConfig,
    /// Budget per (combo, scheme) simulation.
    pub budget: RunBudget,
    /// SNUG parameters. The stage lengths must fit several periods into
    /// the budget; `SnugConfig::scaled` keeps the paper's 1:20 ratio.
    pub snug: SnugConfig,
    /// DSR parameters.
    pub dsr: DsrConfig,
}

impl CompareConfig {
    /// Default evaluation configuration: paper platform, SNUG periods
    /// scaled to the simulation budget. Stage I is long enough to sample
    /// every hot set tens of times (the paper's 5 M-cycle stage samples
    /// each set ~100+ times); the 1:5 stage ratio trades a little of the
    /// paper's 1:20 amortisation for identification fidelity at this
    /// budget.
    pub fn default_eval() -> Self {
        let mut snug = SnugConfig::paper();
        snug.stage1_cycles = 150_000;
        snug.stage2_cycles = 1_350_000;
        snug.continuous_sampling = true;
        CompareConfig {
            system: SystemConfig::paper(),
            budget: RunBudget::default_eval(),
            snug,
            dsr: DsrConfig::paper(),
        }
    }

    /// Fast configuration for tests/benches.
    pub fn quick() -> Self {
        let mut snug = SnugConfig::paper();
        snug.stage1_cycles = 60_000;
        snug.stage2_cycles = 240_000;
        snug.continuous_sampling = true;
        CompareConfig {
            system: SystemConfig::paper(),
            budget: RunBudget::quick(),
            snug,
            dsr: DsrConfig::paper(),
        }
    }
}

/// Result of one scheme on one combo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeResult {
    /// Scheme display name ("L2S", "CC(Best)", "DSR", "SNUG").
    pub scheme: String,
    /// All three metrics vs the L2P baseline.
    pub metrics: MetricSet,
    /// Per-core IPCs.
    pub ipcs: Vec<f64>,
}

/// Result of the full comparison on one combo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComboResult {
    /// Combo label ("ammp+parser+bzip2+mcf").
    pub label: String,
    /// Combination class.
    pub class: ComboClass,
    /// Baseline per-core IPCs (L2P).
    pub baseline_ipcs: Vec<f64>,
    /// L2S / CC(Best) / DSR / SNUG results, in figure order.
    pub schemes: Vec<SchemeResult>,
    /// The CC sweep: (spill probability, normalised throughput).
    pub cc_sweep: Vec<(f64, f64)>,
}

impl ComboResult {
    /// Look up a scheme's metrics by display name.
    pub fn metrics_of(&self, scheme: &str) -> Option<MetricSet> {
        self.schemes
            .iter()
            .find(|s| s.scheme == scheme)
            .map(|s| s.metrics)
    }
}

/// Run one combo under one scheme spec; returns the raw system result.
pub fn run_scheme(combo: &Combo, spec: &SchemeSpec, cfg: &CompareConfig) -> SystemResult {
    let org = spec.build(cfg.system);
    let mut sys = CmpSystem::new(cfg.system, org);
    let streams: Vec<Box<dyn OpStream>> = combo
        .apps
        .iter()
        .enumerate()
        .map(|(core, b)| Box::new(b.spec().stream(cfg.system.l2_slice, core)) as Box<dyn OpStream>)
        .collect();
    sys.run(streams, cfg.budget.warmup_cycles, cfg.budget.measure_cycles)
}

/// Run the full five-scheme comparison on one combo.
pub fn run_combo(combo: &Combo, cfg: &CompareConfig) -> ComboResult {
    let baseline = run_scheme(combo, &SchemeSpec::L2p, cfg);
    let base_ipcs = IpcVector::new(baseline.ipcs());

    let mut schemes = Vec::new();

    // L2S.
    let l2s = run_scheme(combo, &SchemeSpec::L2s, cfg);
    schemes.push(SchemeResult {
        scheme: "L2S".into(),
        metrics: MetricSet::compute(&IpcVector::new(l2s.ipcs()), &base_ipcs),
        ipcs: l2s.ipcs(),
    });

    // CC sweep → CC(Best) by throughput (§4.1: "the spill-probability
    // that produces the best performance is selected as CC (Best)").
    let mut cc_sweep = Vec::new();
    let mut best: Option<(f64, SchemeResult)> = None;
    for &p in &SchemeSpec::CC_SPILL_SWEEP {
        let r = run_scheme(
            combo,
            &SchemeSpec::Cc {
                spill_probability: p,
            },
            cfg,
        );
        let ipcs = IpcVector::new(r.ipcs());
        let metrics = MetricSet::compute(&ipcs, &base_ipcs);
        cc_sweep.push((p, metrics.throughput));
        let candidate = SchemeResult {
            scheme: "CC(Best)".into(),
            metrics,
            ipcs: r.ipcs(),
        };
        if best
            .as_ref()
            .map(|(t, _)| metrics.throughput > *t)
            .unwrap_or(true)
        {
            best = Some((metrics.throughput, candidate));
        }
    }
    schemes.push(best.expect("non-empty sweep").1);

    // DSR.
    let dsr = run_scheme(combo, &SchemeSpec::Dsr(cfg.dsr), cfg);
    schemes.push(SchemeResult {
        scheme: "DSR".into(),
        metrics: MetricSet::compute(&IpcVector::new(dsr.ipcs()), &base_ipcs),
        ipcs: dsr.ipcs(),
    });

    // SNUG.
    let snug = run_scheme(combo, &SchemeSpec::Snug(cfg.snug), cfg);
    schemes.push(SchemeResult {
        scheme: "SNUG".into(),
        metrics: MetricSet::compute(&IpcVector::new(snug.ipcs()), &base_ipcs),
        ipcs: snug.ipcs(),
    });

    ComboResult {
        label: combo.label(),
        class: combo.class,
        baseline_ipcs: baseline.ipcs(),
        schemes,
        cc_sweep,
    }
}

/// Per-class geometric-mean summary of one metric across combos — one
/// group of bars in Figs. 9–11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The class ("C1".."C6") or "AVG".
    pub class: String,
    /// (scheme name, geomean metric) pairs in figure order.
    pub values: Vec<(String, f64)>,
}

/// Which of the three figures to summarise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure {
    /// Fig. 9: normalised throughput.
    Throughput,
    /// Fig. 10: average weighted speedup.
    Aws,
    /// Fig. 11: fair speedup.
    FairSpeedup,
}

impl Figure {
    /// Figure title as in the paper.
    pub fn title(&self) -> &'static str {
        match self {
            Figure::Throughput => "Figure 9: Throughput normalised to L2P",
            Figure::Aws => "Figure 10: Average Weighted Speedup",
            Figure::FairSpeedup => "Figure 11: Fair Speedup",
        }
    }

    fn pick(&self, m: &MetricSet) -> f64 {
        match self {
            Figure::Throughput => m.throughput,
            Figure::Aws => m.aws,
            Figure::FairSpeedup => m.fair,
        }
    }
}

/// The scheme order of the figures' legends.
pub const FIGURE_SCHEMES: [&str; 4] = ["L2S", "CC(Best)", "DSR", "SNUG"];

/// Summarise combo results into per-class geomeans plus the AVG row.
pub fn summarize(results: &[ComboResult], figure: Figure) -> Vec<ClassSummary> {
    let mut out = Vec::new();
    let mut all_by_scheme: Vec<Vec<f64>> = vec![Vec::new(); FIGURE_SCHEMES.len()];
    for class in ComboClass::ALL {
        let in_class: Vec<&ComboResult> = results.iter().filter(|r| r.class == class).collect();
        if in_class.is_empty() {
            continue;
        }
        let mut values = Vec::new();
        for (i, scheme) in FIGURE_SCHEMES.iter().enumerate() {
            let vals: Vec<f64> = in_class
                .iter()
                .map(|r| figure.pick(&r.metrics_of(scheme).expect("scheme present")))
                .collect();
            let g = geomean(&vals);
            all_by_scheme[i].extend(vals);
            values.push((scheme.to_string(), g));
        }
        out.push(ClassSummary {
            class: class.name().to_string(),
            values,
        });
    }
    let avg = ClassSummary {
        class: "AVG".into(),
        values: FIGURE_SCHEMES
            .iter()
            .zip(&all_by_scheme)
            .map(|(s, vals)| (s.to_string(), geomean(vals)))
            .collect(),
    };
    out.push(avg);
    out
}

/// Render a figure summary as a Markdown table (the paper's bar chart as
/// rows).
pub fn figure_table(summaries: &[ClassSummary], figure: Figure) -> Table {
    let mut headers = vec!["Class".to_string()];
    headers.extend(FIGURE_SCHEMES.iter().map(|s| s.to_string()));
    let mut t = Table::new(figure.title(), headers);
    for s in summaries {
        let mut row = vec![s.class.clone()];
        for (_, v) in &s.values {
            row.push(format!("{v:.3}"));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_result(class: ComboClass, snug_tp: f64) -> ComboResult {
        let mk = |name: &str, tp: f64| SchemeResult {
            scheme: name.into(),
            metrics: MetricSet {
                throughput: tp,
                aws: tp,
                fair: tp,
            },
            ipcs: vec![1.0; 4],
        };
        ComboResult {
            label: "x".into(),
            class,
            baseline_ipcs: vec![1.0; 4],
            schemes: vec![
                mk("L2S", 1.0),
                mk("CC(Best)", 1.05),
                mk("DSR", 1.08),
                mk("SNUG", snug_tp),
            ],
            cc_sweep: vec![(0.0, 1.0)],
        }
    }

    #[test]
    fn summarize_groups_by_class_and_appends_avg() {
        let results = vec![
            fake_result(ComboClass::C1, 1.2),
            fake_result(ComboClass::C1, 1.3),
            fake_result(ComboClass::C3, 1.1),
        ];
        let s = summarize(&results, Figure::Throughput);
        assert_eq!(s.len(), 3, "C1, C3, AVG");
        assert_eq!(s[0].class, "C1");
        let snug_c1 = s[0].values.iter().find(|(n, _)| n == "SNUG").unwrap().1;
        assert!((snug_c1 - (1.2f64 * 1.3).sqrt()).abs() < 1e-12, "geomean");
        assert_eq!(s.last().unwrap().class, "AVG");
    }

    #[test]
    fn figure_table_has_scheme_columns() {
        let results = vec![fake_result(ComboClass::C5, 1.15)];
        let s = summarize(&results, Figure::Aws);
        let t = figure_table(&s, Figure::Aws);
        assert!(t.to_markdown().contains("SNUG"));
        assert_eq!(t.len(), 2, "C5 + AVG");
    }

    #[test]
    fn budget_presets_are_ordered() {
        assert!(RunBudget::quick().measure_cycles < RunBudget::default_eval().measure_cycles);
    }
}
