//! The five-scheme comparison behind Figures 9–11.
//!
//! For each workload combination (Table 8) the harness runs L2S,
//! CC (sweeping the spill probabilities of §4.1 and keeping the best —
//! "CC(Best)"), DSR and SNUG, all normalised to an L2P run of the same
//! combination. Class results aggregate with the geometric mean (§5).

use serde::{Deserialize, Serialize};
use sim_cmp::{L2Org, RunPlan, SimSession, StopSpec, SystemConfig, SystemResult};
use sim_mem::OpStream;
use snug_core::{AnyOrg, Cc, DsrConfig, SchemeSpec, SnugConfig};
use snug_metrics::{geomean, IpcVector, MetricSet, Table};
use snug_workloads::{Combo, ComboClass, PhaseSchedule};

/// Default relative-spread threshold for convergence-based early exit
/// (`snug sweep --until-converged` without `--rel-eps`): the baseline's
/// throughput over the last four sample windows must agree to within
/// 2 %. Calibrated at the `--mid` budget: with baseline pacing a
/// converged sweep reproduces the committed fixed-budget store's
/// per-combo winning scheme on all 21 combinations while simulating
/// ~6 % fewer total cycles (0.03 still holds 21/21 at ~6.5 %; 0.04
/// starts flipping the two hairline ≤0.1 %-margin combos, so 0.02
/// leaves a safety margin).
pub const DEFAULT_REL_EPSILON: f64 = 0.02;

/// The default convergence sample window for a plan: a tenth of the
/// measured ceiling (at the calibrated `--mid` budget this is 300 K
/// cycles — exactly one SNUG sampling period, so each sample integrates
/// over the periodic stage-transition transients).
pub fn default_window(plan: &RunPlan) -> u64 {
    (plan.measure_cycles() / 10).max(1)
}

/// The fixed-window run plans of the three presets (every core runs
/// the full window, as in the paper's fixed-3 B-cycle methodology).
impl CompareConfig {
    /// The default evaluation plan: ~4 SNUG sampling periods under the
    /// default_eval SNUG stage lengths (250 K + 1.25 M cycles).
    pub fn default_eval_plan() -> RunPlan {
        RunPlan::fixed(600_000, 6_300_000)
    }

    /// A fast plan for tests and smoke benches (pair with the quick
    /// SNUG stage lengths, period 300 K cycles).
    pub fn quick_plan() -> RunPlan {
        RunPlan::fixed(150_000, 1_200_000)
    }

    /// The calibrated mid plan: the smallest window with non-trivial
    /// scheme separation on the capacity-sensitive classes — on average
    /// SNUG ≥ DSR, both above L2P, L2S far worst — while keeping a full
    /// 21-combo sweep under a minute on one core. Picked empirically —
    /// see `examples/calibrate_mid.rs`.
    pub fn mid_plan() -> RunPlan {
        RunPlan::fixed(300_000, 3_000_000)
    }
}

/// Full configuration of a comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Platform (Table 4).
    pub system: SystemConfig,
    /// Run plan per (combo, scheme) simulation: warm-up + stop policy.
    pub plan: RunPlan,
    /// SNUG parameters. The stage lengths must fit several periods into
    /// the plan's measured window; `SnugConfig::scaled` keeps the
    /// paper's 1:20 ratio.
    pub snug: SnugConfig,
    /// DSR parameters.
    pub dsr: DsrConfig,
}

impl CompareConfig {
    /// Default evaluation configuration: paper platform, SNUG periods
    /// scaled to the simulation budget. Stage I is long enough to sample
    /// every hot set tens of times (the paper's 5 M-cycle stage samples
    /// each set ~100+ times); the 1:5 stage ratio trades a little of the
    /// paper's 1:20 amortisation for identification fidelity at this
    /// budget.
    pub fn default_eval() -> Self {
        let mut snug = SnugConfig::paper();
        snug.stage1_cycles = 150_000;
        snug.stage2_cycles = 1_350_000;
        snug.continuous_sampling = true;
        CompareConfig {
            system: SystemConfig::paper(),
            plan: CompareConfig::default_eval_plan(),
            snug,
            dsr: DsrConfig::paper(),
        }
    }

    /// Fast configuration for tests/benches.
    pub fn quick() -> Self {
        let mut snug = SnugConfig::paper();
        snug.stage1_cycles = 60_000;
        snug.stage2_cycles = 240_000;
        snug.continuous_sampling = true;
        CompareConfig {
            system: SystemConfig::paper(),
            plan: CompareConfig::quick_plan(),
            snug,
            dsr: DsrConfig::paper(),
        }
    }

    /// The calibrated mid configuration behind `snug sweep --mid`: the
    /// CI-fast paper reproduction. Ten short SNUG sampling periods fit
    /// the [`CompareConfig::mid_plan`] window — at this scale frequent
    /// re-identification beats the paper's 1:20 stage amortisation
    /// (Stage I costs only 3 % of each period, and fresher G/T vectors
    /// lift the capacity-sensitive mixed classes the most). Picked
    /// empirically with `examples/calibrate_mid.rs`; see the candidate
    /// table there before changing these numbers.
    pub fn mid() -> Self {
        let mut snug = SnugConfig::paper();
        snug.stage1_cycles = 10_000;
        snug.stage2_cycles = 290_000;
        snug.continuous_sampling = true;
        CompareConfig {
            system: SystemConfig::paper(),
            plan: CompareConfig::mid_plan(),
            snug,
            dsr: DsrConfig::paper(),
        }
    }

    /// Swap the plan's stop policy for convergence-based early exit:
    /// the current measured window becomes the ceiling, `window_cycles`
    /// defaults to [`default_window`] and `rel_epsilon` to
    /// [`DEFAULT_REL_EPSILON`].
    pub fn until_converged(mut self, window_cycles: Option<u64>, rel_epsilon: Option<f64>) -> Self {
        let window = window_cycles.unwrap_or_else(|| default_window(&self.plan));
        let eps = rel_epsilon.unwrap_or(DEFAULT_REL_EPSILON);
        self.plan = self.plan.until_converged(window, eps);
        self
    }

    /// Swap the plan's stop policy for re-convergence under a
    /// phase-change schedule (`snug sweep --until-reconverged`): same
    /// defaults as [`CompareConfig::until_converged`], but the run only
    /// stops once throughput has re-stabilised after the workload's
    /// last scheduled shift, with per-phase plateau means recorded.
    pub fn until_reconverged(
        mut self,
        window_cycles: Option<u64>,
        rel_epsilon: Option<f64>,
    ) -> Self {
        let window = window_cycles.unwrap_or_else(|| default_window(&self.plan));
        let eps = rel_epsilon.unwrap_or(DEFAULT_REL_EPSILON);
        self.plan = self.plan.until_reconverged(window, eps);
        self
    }
}

/// Result of one scheme on one combo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeResult {
    /// Scheme display name ("L2S", "CC(Best)", "DSR", "SNUG").
    pub scheme: String,
    /// All three metrics vs the L2P baseline.
    pub metrics: MetricSet,
    /// Per-core IPCs.
    pub ipcs: Vec<f64>,
}

/// Result of the full comparison on one combo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComboResult {
    /// Combo label ("ammp+parser+bzip2+mcf").
    pub label: String,
    /// Combination class.
    pub class: ComboClass,
    /// Baseline per-core IPCs (L2P).
    pub baseline_ipcs: Vec<f64>,
    /// L2S / CC(Best) / DSR / SNUG results, in figure order.
    pub schemes: Vec<SchemeResult>,
    /// The CC sweep: (spill probability, normalised throughput).
    pub cc_sweep: Vec<(f64, f64)>,
}

impl ComboResult {
    /// Look up a scheme's metrics by display name.
    pub fn metrics_of(&self, scheme: &str) -> Option<MetricSet> {
        self.schemes
            .iter()
            .find(|s| s.scheme == scheme)
            .map(|s| s.metrics)
    }
}

/// One op stream per core for a combo on the given platform.
pub fn combo_streams(combo: &Combo, system: &SystemConfig) -> Vec<Box<dyn OpStream>> {
    combo
        .apps
        .iter()
        .enumerate()
        .map(|(core, b)| Box::new(b.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>)
        .collect()
}

/// Build a ready-to-drive session for one combo under one organisation:
/// combo streams attached, budget set, nothing run yet. The scheme-spec
/// form is [`session_for`]; this one takes a concrete organisation so
/// callers keep typed access to it (e.g. the shared-warm-up CC sweep).
pub fn session_for_org<O: L2Org>(combo: &Combo, org: O, cfg: &CompareConfig) -> SimSession<O> {
    session_for_org_phased(combo, org, cfg, None)
}

/// [`session_for_org`] with an optional phase-change schedule: the
/// session applies the scheduled stream shifts at frontier boundaries,
/// and a [`StopSpec::Reconverged`] plan segments its measured window at
/// the schedule's shift cycles.
pub fn session_for_org_phased<O: L2Org>(
    combo: &Combo,
    org: O,
    cfg: &CompareConfig,
    phase: Option<&PhaseSchedule>,
) -> SimSession<O> {
    SimSession::builder(cfg.system, org)
        .streams(combo_streams(combo, &cfg.system))
        .plan(cfg.plan)
        .phase_shifts(phase.map(|p| p.shifts().to_vec()).unwrap_or_default())
        .build()
}

/// Build a ready-to-drive session for one combo under one scheme spec.
/// The organisation is the enum-dispatched [`AnyOrg`], so the per-miss
/// scheme call devirtualizes on the session hot path.
pub fn session_for(combo: &Combo, spec: &SchemeSpec, cfg: &CompareConfig) -> SimSession<AnyOrg> {
    session_for_org(combo, spec.build_any(cfg.system), cfg)
}

/// [`session_for`] with an optional phase-change schedule.
pub fn session_for_phased(
    combo: &Combo,
    spec: &SchemeSpec,
    cfg: &CompareConfig,
    phase: Option<&PhaseSchedule>,
) -> SimSession<AnyOrg> {
    session_for_org_phased(combo, spec.build_any(cfg.system), cfg, phase)
}

/// Run one combo under one scheme spec; returns the raw system result.
/// (The original one-shot entry point, now a thin wrapper over
/// [`session_for`].)
pub fn run_scheme(combo: &Combo, spec: &SchemeSpec, cfg: &CompareConfig) -> SystemResult {
    session_for(combo, spec, cfg).run_to_completion()
}

/// One point of the five-scheme comparison — the unit of simulation and
/// therefore the unit of caching in the harness result store. CC expands
/// into one point per §4.1 spill probability, so editing one scheme's
/// parameters invalidates only that scheme's cached runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchemePoint {
    /// Private baseline (the normalisation denominator of Figs. 9–11).
    L2p,
    /// Shared, address-interleaved.
    L2s,
    /// Cooperative Caching at one spill probability of the §4.1 sweep.
    Cc {
        /// Probability of spilling a clean owned victim.
        spill_probability: f64,
    },
    /// Dynamic Spill-Receive.
    Dsr,
    /// SNUG.
    Snug,
}

impl SchemePoint {
    /// Points per combo: L2P + L2S + the CC sweep + DSR + SNUG.
    pub const COUNT: usize = 4 + SchemeSpec::CC_SPILL_SWEEP.len();

    /// Every point one combo expands into, in run order: L2P (baseline
    /// first), L2S, the CC spill sweep, DSR, SNUG.
    pub fn all() -> Vec<SchemePoint> {
        let mut points = vec![SchemePoint::L2p, SchemePoint::L2s];
        points.extend(SchemeSpec::CC_SPILL_SWEEP.iter().map(|&p| SchemePoint::Cc {
            spill_probability: p,
        }));
        points.push(SchemePoint::Dsr);
        points.push(SchemePoint::Snug);
        points
    }

    /// Short stable label for logs and store audits ("l2p", "cc@50%").
    pub fn label(&self) -> String {
        match self {
            SchemePoint::L2p => "l2p".into(),
            SchemePoint::L2s => "l2s".into(),
            SchemePoint::Cc { spill_probability } => {
                format!("cc@{:.0}%", spill_probability * 100.0)
            }
            SchemePoint::Dsr => "dsr".into(),
            SchemePoint::Snug => "snug".into(),
        }
    }

    /// The concrete scheme to build, pulling per-scheme parameters from
    /// `cfg`.
    pub fn spec(&self, cfg: &CompareConfig) -> SchemeSpec {
        match *self {
            SchemePoint::L2p => SchemeSpec::L2p,
            SchemePoint::L2s => SchemeSpec::L2s,
            SchemePoint::Cc { spill_probability } => SchemeSpec::Cc { spill_probability },
            SchemePoint::Dsr => SchemeSpec::Dsr(cfg.dsr),
            SchemePoint::Snug => SchemeSpec::Snug(cfg.snug),
        }
    }

    /// The scheme-specific parameters that feed this point's content
    /// key: only SNUG points depend on `cfg.snug` and only DSR points on
    /// `cfg.dsr`, so a scheme-config edit invalidates exactly that
    /// scheme's cached jobs.
    pub fn param_fingerprint(&self, cfg: &CompareConfig) -> String {
        match self {
            SchemePoint::Dsr => format!("{:?}", cfg.dsr),
            SchemePoint::Snug => format!("{:?}", cfg.snug),
            _ => String::new(),
        }
    }
}

/// Why an early-exit-capable run ended where it did. `None` on a
/// [`SchemeRun`] means the run had no early-exit machinery at all (the
/// canonical fixed-plan methodology); a bare "used the whole window"
/// used to be ambiguous between that and a convergence run that never
/// stabilised — which is exactly what L2S does on every `--mid` combo,
/// so downstream numbers silently mixed plateau and mid-ramp
/// measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The stop policy found a stable plateau (for paced siblings: the
    /// combo's baseline did, and this run measured that window).
    Converged,
    /// The run hit the `max_cycles` ceiling without ever stabilising —
    /// its numbers are mid-ramp, not plateau.
    Ceiling,
}

impl StopReason {
    /// Short store/report label ("converged" / "ceiling").
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::Ceiling => "ceiling",
        }
    }

    /// Parse a [`StopReason::label`] string.
    pub fn from_label(label: &str) -> Option<StopReason> {
        match label {
            "converged" => Some(StopReason::Converged),
            "ceiling" => Some(StopReason::Ceiling),
            _ => None,
        }
    }
}

/// The raw output of one (combo, scheme point) simulation: the per-core
/// IPCs everything else derives from. This is what the harness store
/// persists per unit job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeRun {
    /// The producing point's label (for humans auditing the store).
    pub scheme: String,
    /// Measured per-core IPCs.
    pub ipcs: Vec<f64>,
    /// Measured cycles when a stop policy ended the run early (`None`:
    /// the run used its full measured window — every fixed-plan run,
    /// and converged runs that never stabilised).
    pub measured_cycles: Option<u64>,
    /// Why the run ended: present on every early-exit-capable run
    /// (converged/reconverged sweeps, including their baseline-paced
    /// siblings), absent on canonical fixed-plan runs — so the
    /// committed fixed-plan store entries render exactly as they always
    /// did.
    pub stop_reason: Option<StopReason>,
    /// Per-phase mean throughputs: one entry per workload phase, the
    /// last being the phase the run stopped in. Under a re-convergence
    /// policy these are the policy's rolling-window plateau means; on
    /// a paced fixed-window run of a shifted sweep they are whole-phase
    /// measured means over the window the combo's baseline already
    /// certified as re-converged. Empty on stationary fixed runs.
    pub plateaus: Vec<f64>,
}

/// Run one scheme point of one combo.
pub fn run_point(combo: &Combo, point: &SchemePoint, cfg: &CompareConfig) -> SchemeRun {
    run_point_phased(combo, point, cfg, None)
}

/// The stop reason and per-phase plateaus of a completed session under
/// `plan` — the single derivation both the per-point and shared-warm-up
/// paths record: `Some(reason)` exactly when the plan can stop early,
/// plateau means exactly under a re-convergence policy.
fn early_exit_outcome<O: L2Org>(
    session: &SimSession<O>,
    plan: &RunPlan,
) -> (Option<StopReason>, Vec<f64>) {
    let stop_reason = plan.can_stop_early().then(|| {
        if session.stopped_at().is_some() {
            StopReason::Converged
        } else {
            StopReason::Ceiling
        }
    });
    let plateaus = if matches!(plan.stop, StopSpec::Reconverged { .. }) {
        session
            .phase_plateaus()
            .iter()
            .map(|p| p.mean_throughput)
            .collect()
    } else {
        Vec::new()
    };
    (stop_reason, plateaus)
}

/// Drive `session` to completion; on a *pure fixed-window* plan under
/// a phase schedule, pause at each measured-window shift boundary
/// first and record per-phase measured mean throughputs (sum of
/// per-core instructions/cycles over each phase's slice of the
/// window). This is how baseline-paced siblings of a shifted
/// re-converged sweep get per-scheme phase means without touching
/// their plan — and therefore their content keys: `run_until` at a
/// boundary is observation only, interleaving-equivalent to the
/// one-shot run (the session-determinism property suite pins this).
/// Early-exit-capable plans run one-shot and return no means — the
/// re-convergence policy derives its own plateau means there.
fn run_with_phase_means<O: L2Org>(
    session: &mut SimSession<O>,
    plan: &RunPlan,
    phase: Option<&PhaseSchedule>,
) -> (SystemResult, Vec<f64>) {
    let horizon = plan.warmup_cycles + plan.measure_cycles();
    let mut cuts: Vec<u64> = match phase {
        Some(p) if !plan.can_stop_early() => p
            .shifts()
            .iter()
            .map(|s| s.at_cycle)
            .filter(|&c| c > plan.warmup_cycles && c < horizon)
            .collect(),
        _ => Vec::new(),
    };
    cuts.dedup();
    if cuts.is_empty() {
        return (session.run_to_completion(), Vec::new());
    }
    let mut marks: Vec<SystemResult> = Vec::with_capacity(cuts.len());
    for &cut in &cuts {
        session.run_until(cut);
        marks.push(session.result());
    }
    let r = session.run_to_completion();
    let mut means = Vec::with_capacity(marks.len() + 1);
    let mut prev: Option<&SystemResult> = None;
    for mark in marks.iter().chain(std::iter::once(&r)) {
        means.push(segment_throughput(prev, mark));
        prev = Some(mark);
    }
    (r, means)
}

/// Sum of per-core IPCs over the segment between two cumulative
/// measurement marks (from the window start when `prev` is `None`).
fn segment_throughput(prev: Option<&SystemResult>, cur: &SystemResult) -> f64 {
    cur.cores
        .iter()
        .enumerate()
        .map(|(i, core)| {
            let (i0, c0) = prev
                .map(|p| (p.cores[i].instructions, p.cores[i].cycles))
                .unwrap_or((0, 0));
            let di = core.instructions.saturating_sub(i0);
            let dc = core.cycles.saturating_sub(c0);
            if dc == 0 {
                0.0
            } else {
                di as f64 / dc as f64
            }
        })
        .sum()
}

/// Run one scheme point of one combo under an optional phase-change
/// schedule, recording the explicit stop reason on early-exit-capable
/// plans and per-phase means on paced fixed-window shifted runs.
pub fn run_point_phased(
    combo: &Combo,
    point: &SchemePoint,
    cfg: &CompareConfig,
    phase: Option<&PhaseSchedule>,
) -> SchemeRun {
    let mut session = session_for_phased(combo, &point.spec(cfg), cfg, phase);
    let (r, phase_means) = run_with_phase_means(&mut session, &cfg.plan, phase);
    let (stop_reason, mut plateaus) = early_exit_outcome(&session, &cfg.plan);
    if plateaus.is_empty() {
        plateaus = phase_means;
    }
    SchemeRun {
        scheme: point.label(),
        ipcs: r.ipcs(),
        measured_cycles: session
            .stopped_at()
            .map(|c| c.saturating_sub(cfg.plan.warmup_cycles)),
        stop_reason,
        plateaus,
    }
}

/// `cfg` with its plan replaced by a fixed window of `measured_window`
/// cycles — how a combo's non-baseline points run once the baseline's
/// convergence has fixed the pace.
pub fn paced_config(cfg: &CompareConfig, measured_window: u64) -> CompareConfig {
    let mut paced = *cfg;
    paced.plan = RunPlan::fixed(cfg.plan.warmup_cycles, measured_window);
    paced
}

/// The measurement window a converged baseline fixed for its combo,
/// plus how it got there — every paced sibling inherits both, so a
/// combo whose baseline never stabilised is marked `Ceiling` on every
/// scheme instead of masquerading as a full clean window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pace {
    /// Measured cycles every scheme of the combo runs.
    pub measured_window: u64,
    /// The baseline's stop reason, inherited by the siblings.
    pub stop_reason: StopReason,
}

/// Run one scheme point over an exact pace (the window a converged
/// baseline run set for its combo). The window is recorded in the run
/// when it beats the plan's ceiling, and the baseline's stop reason is
/// inherited, so cached entries carry both the cycles they actually
/// simulated and whether those cycles were a plateau.
pub fn run_point_paced(
    combo: &Combo,
    point: &SchemePoint,
    cfg: &CompareConfig,
    pace: &Pace,
    phase: Option<&PhaseSchedule>,
) -> SchemeRun {
    let mut run = run_point_phased(
        combo,
        point,
        &paced_config(cfg, pace.measured_window),
        phase,
    );
    if pace.measured_window < cfg.plan.measure_cycles() {
        run.measured_cycles = Some(pace.measured_window);
    }
    run.stop_reason = Some(pace.stop_reason);
    run
}

/// The pace a converged baseline run sets for its combo: its early-stop
/// cycle, or the full ceiling if it never stabilised. The stop reason
/// prefers the baseline's recorded one; the inference fallback is
/// belt-and-braces for hand-merged or edited stores — every entry
/// written under the current early-exit key revision records its
/// reason, and pre-revision entries can no longer be looked up.
pub fn pace_of(baseline: &SchemeRun, cfg: &CompareConfig) -> Pace {
    let stop_reason = baseline
        .stop_reason
        .unwrap_or(match baseline.measured_cycles {
            Some(_) => StopReason::Converged,
            None => StopReason::Ceiling,
        });
    Pace {
        measured_window: baseline
            .measured_cycles
            .unwrap_or_else(|| cfg.plan.measure_cycles()),
        stop_reason,
    }
}

/// Run a subset of the §4.1 CC spill sweep from **one shared warm-up**:
/// a single CC session is warmed with spilling inhibited (`p = 0`), its
/// post-warm-up state is snapshotted, and each requested spill point
/// restores the snapshot, retunes `p` and runs only the measured window.
///
/// This is the session API's warm-up-reuse fast path: `k` spill points
/// cost one warm-up instead of `k`. It is a *methodology variant*, not a
/// reproduction of the canonical per-point runs — under canonical
/// semantics each probability also shapes the warm-up (spills happen
/// during warm-up too), so shared-warm-up results are close to but not
/// bit-identical with the default sweep and are cached under their own
/// store keys. Matched warm-up state across the sweep also removes
/// warm-up variance from the CC(Best) selection.
pub fn run_cc_points_shared(
    combo: &Combo,
    points: &[SchemePoint],
    cfg: &CompareConfig,
) -> Vec<(SchemePoint, SchemeRun)> {
    run_cc_points_shared_phased(combo, points, cfg, None, None)
}

/// [`run_cc_points_shared`] under an optional phase-change schedule
/// and/or an optional baseline pace. With a pace, the whole family
/// measures over exactly the window the combo's converged baseline
/// settled on (the composition `--shared-warmup --until-converged`
/// uses: one warm-up snapshot, then baseline-paced fixed-window
/// measurement from it) and inherits the baseline's stop reason.
pub fn run_cc_points_shared_phased(
    combo: &Combo,
    points: &[SchemePoint],
    cfg: &CompareConfig,
    phase: Option<&PhaseSchedule>,
    pace: Option<&Pace>,
) -> Vec<(SchemePoint, SchemeRun)> {
    assert!(
        points.iter().all(|p| matches!(p, SchemePoint::Cc { .. })),
        "shared warm-up applies to the CC spill sweep"
    );
    let run_cfg = match pace {
        Some(p) => paced_config(cfg, p.measured_window),
        None => *cfg,
    };
    let mut warm = session_for_org_phased(combo, Cc::new(cfg.system, 0.0), &run_cfg, phase);
    warm.run_until(run_cfg.plan.warmup_cycles);
    debug_assert!(warm.measuring(), "warm-up boundary crossed");
    // snug-lint: allow(panic-audit, "synthetic workload streams always support snapshotting; only recorded traces can refuse")
    let snap = warm.snapshot().expect("synthetic streams snapshot");
    points
        .iter()
        .map(|point| {
            let SchemePoint::Cc { spill_probability } = *point else {
                // snug-lint: allow(panic-audit, "the caller builds points exclusively from SchemePoint::Cc, checked by the let-else above")
                unreachable!("asserted above");
            };
            // snug-lint: allow(panic-audit, "a snapshot taken from synthetic streams always restores")
            let mut sess = snap.to_session().expect("snapshot streams clone");
            sess.org_mut().set_spill_probability(spill_probability);
            let (r, phase_means) = run_with_phase_means(&mut sess, &run_cfg.plan, phase);
            let mut measured_cycles = sess
                .stopped_at()
                .map(|c| c.saturating_sub(run_cfg.plan.warmup_cycles));
            // The family ran under `run_cfg`: the original early-exit
            // plan when unpaced, the baseline's fixed window when
            // paced — in which case the pace's window and stop reason
            // override, exactly as `run_point_paced` records them.
            let (mut stop_reason, mut plateaus) = early_exit_outcome(&sess, &run_cfg.plan);
            if plateaus.is_empty() {
                plateaus = phase_means;
            }
            if let Some(p) = pace {
                if p.measured_window < cfg.plan.measure_cycles() {
                    measured_cycles = Some(p.measured_window);
                }
                stop_reason = Some(p.stop_reason);
            }
            (
                *point,
                SchemeRun {
                    scheme: point.label(),
                    ipcs: r.ipcs(),
                    measured_cycles,
                    stop_reason,
                    plateaus,
                },
            )
        })
        .collect()
}

/// Index of the winning CC point in a `(spill probability, normalised
/// throughput)` sweep: the *first* maximum by throughput, §4.1's "the
/// spill-probability that produces the best performance is selected as
/// CC (Best)". This is the single definition of the tie-break rule —
/// result assembly, store migration and reporting must all agree on it
/// or cached and fresh results diverge.
pub fn best_cc_index(cc_sweep: &[(f64, f64)]) -> Option<usize> {
    cc_sweep
        .iter()
        .enumerate()
        .fold(None::<(usize, f64)>, |best, (i, &(_, tp))| match best {
            Some((_, t)) if tp <= t => best,
            _ => Some((i, tp)),
        })
        .map(|(i, _)| i)
}

/// Assemble per-point runs into the combo's five-scheme result —
/// metrics normalised to the L2P point, CC(Best) selected by throughput
/// over the spill sweep (§4.1), exactly as [`run_combo`] produces.
///
/// # Panics
///
/// Panics if `runs` is missing any point of [`SchemePoint::all`] — the
/// harness only calls this once every unit job of a combo completed.
pub fn assemble_combo(combo: &Combo, runs: &[(SchemePoint, SchemeRun)]) -> ComboResult {
    let ipcs_of = |want: &SchemePoint| -> Vec<f64> {
        runs.iter()
            .find(|(p, _)| p == want)
            .unwrap_or_else(|| {
                // snug-lint: allow(panic-audit, "assemble_combo is fed by the runner, which produces every scheme point per combo")
                panic!(
                    "missing scheme point {} for {}",
                    want.label(),
                    combo.label()
                )
            })
            .1
            .ipcs
            .clone()
    };
    let baseline_ipcs = ipcs_of(&SchemePoint::L2p);
    let base = IpcVector::new(baseline_ipcs.clone());
    let scheme_result = |name: &str, ipcs: Vec<f64>| SchemeResult {
        scheme: name.into(),
        metrics: MetricSet::compute(&IpcVector::new(ipcs.clone()), &base),
        ipcs,
    };

    let mut schemes = vec![scheme_result("L2S", ipcs_of(&SchemePoint::L2s))];

    // CC sweep → CC(Best) by throughput, tie-break per [`best_cc_index`].
    let candidates: Vec<SchemeResult> = SchemeSpec::CC_SPILL_SWEEP
        .iter()
        .map(|&p| {
            scheme_result(
                "CC(Best)",
                ipcs_of(&SchemePoint::Cc {
                    spill_probability: p,
                }),
            )
        })
        .collect();
    let cc_sweep: Vec<(f64, f64)> = SchemeSpec::CC_SPILL_SWEEP
        .iter()
        .zip(&candidates)
        .map(|(&p, c)| (p, c.metrics.throughput))
        .collect();
    // snug-lint: allow(panic-audit, "CC_SPILL_POINTS is a non-empty const; the sweep always has candidates")
    let best = best_cc_index(&cc_sweep).expect("non-empty sweep");
    // snug-lint: allow(panic-audit, "best_cc_index returns an index into the same candidates vec")
    schemes.push(candidates.into_iter().nth(best).expect("index in range"));

    schemes.push(scheme_result("DSR", ipcs_of(&SchemePoint::Dsr)));
    schemes.push(scheme_result("SNUG", ipcs_of(&SchemePoint::Snug)));

    ComboResult {
        label: combo.label(),
        class: combo.class,
        baseline_ipcs,
        schemes,
        cc_sweep,
    }
}

/// Run the full five-scheme comparison on one combo: every point of
/// [`SchemePoint::all`], assembled by [`assemble_combo`].
///
/// Under a convergence plan the combo is **baseline-paced**: the L2P
/// point (the normalisation denominator) runs under the stop policy,
/// and every other point measures over exactly the window the baseline
/// settled on. One window per combo keeps every normalised ratio
/// window-consistent — mixing per-scheme stop cycles inside one combo
/// would bias the CC(Best)/DSR/SNUG comparison by whatever each
/// scheme's tail contributed — while still stopping as soon as the
/// measured system is stable instead of at a guessed cycle count.
pub fn run_combo(combo: &Combo, cfg: &CompareConfig) -> ComboResult {
    let baseline = run_point(combo, &SchemePoint::L2p, cfg);
    let pace = pace_of(&baseline, cfg);
    let runs: Vec<(SchemePoint, SchemeRun)> = std::iter::once((SchemePoint::L2p, baseline))
        .chain(
            SchemePoint::all()
                .into_iter()
                .filter(|p| *p != SchemePoint::L2p)
                .map(|point| {
                    let run = if cfg.plan.can_stop_early() {
                        run_point_paced(combo, &point, cfg, &pace, None)
                    } else {
                        run_point(combo, &point, cfg)
                    };
                    (point, run)
                }),
        )
        .collect();
    assemble_combo(combo, &runs)
}

/// Per-class geometric-mean summary of one metric across combos — one
/// group of bars in Figs. 9–11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The class ("C1".."C6") or "AVG".
    pub class: String,
    /// (scheme name, geomean metric) pairs in figure order.
    pub values: Vec<(String, f64)>,
}

/// Which of the three figures to summarise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure {
    /// Fig. 9: normalised throughput.
    Throughput,
    /// Fig. 10: average weighted speedup.
    Aws,
    /// Fig. 11: fair speedup.
    FairSpeedup,
}

impl Figure {
    /// Figure title as in the paper.
    pub fn title(&self) -> &'static str {
        match self {
            Figure::Throughput => "Figure 9: Throughput normalised to L2P",
            Figure::Aws => "Figure 10: Average Weighted Speedup",
            Figure::FairSpeedup => "Figure 11: Fair Speedup",
        }
    }

    fn pick(&self, m: &MetricSet) -> f64 {
        match self {
            Figure::Throughput => m.throughput,
            Figure::Aws => m.aws,
            Figure::FairSpeedup => m.fair,
        }
    }
}

/// The scheme order of the figures' legends.
pub const FIGURE_SCHEMES: [&str; 4] = ["L2S", "CC(Best)", "DSR", "SNUG"];

/// Summarise combo results into per-class geomeans plus the AVG row.
pub fn summarize(results: &[ComboResult], figure: Figure) -> Vec<ClassSummary> {
    let mut out = Vec::new();
    let mut all_by_scheme: Vec<Vec<f64>> = vec![Vec::new(); FIGURE_SCHEMES.len()];
    for class in ComboClass::ALL {
        let in_class: Vec<&ComboResult> = results.iter().filter(|r| r.class == class).collect();
        if in_class.is_empty() {
            continue;
        }
        let mut values = Vec::new();
        for (i, scheme) in FIGURE_SCHEMES.iter().enumerate() {
            let vals: Vec<f64> = in_class
                .iter()
                // snug-lint: allow(panic-audit, "FIGURE_SCHEMES is the exact scheme set assemble_combo emits")
                .map(|r| figure.pick(&r.metrics_of(scheme).expect("scheme present")))
                .collect();
            let g = geomean(&vals);
            all_by_scheme[i].extend(vals);
            values.push((scheme.to_string(), g));
        }
        out.push(ClassSummary {
            class: class.name().to_string(),
            values,
        });
    }
    let avg = ClassSummary {
        class: "AVG".into(),
        values: FIGURE_SCHEMES
            .iter()
            .zip(&all_by_scheme)
            .map(|(s, vals)| (s.to_string(), geomean(vals)))
            .collect(),
    };
    out.push(avg);
    out
}

/// Render a figure summary as a Markdown table (the paper's bar chart as
/// rows).
pub fn figure_table(summaries: &[ClassSummary], figure: Figure) -> Table {
    let mut headers = vec!["Class".to_string()];
    headers.extend(FIGURE_SCHEMES.iter().map(|s| s.to_string()));
    let mut t = Table::new(figure.title(), headers);
    for s in summaries {
        let mut row = vec![s.class.clone()];
        for (_, v) in &s.values {
            row.push(format!("{v:.3}"));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cmp::StopSpec;

    fn fake_result(class: ComboClass, snug_tp: f64) -> ComboResult {
        let mk = |name: &str, tp: f64| SchemeResult {
            scheme: name.into(),
            metrics: MetricSet {
                throughput: tp,
                aws: tp,
                fair: tp,
            },
            ipcs: vec![1.0; 4],
        };
        ComboResult {
            label: "x".into(),
            class,
            baseline_ipcs: vec![1.0; 4],
            schemes: vec![
                mk("L2S", 1.0),
                mk("CC(Best)", 1.05),
                mk("DSR", 1.08),
                mk("SNUG", snug_tp),
            ],
            cc_sweep: vec![(0.0, 1.0)],
        }
    }

    #[test]
    fn summarize_groups_by_class_and_appends_avg() {
        let results = vec![
            fake_result(ComboClass::C1, 1.2),
            fake_result(ComboClass::C1, 1.3),
            fake_result(ComboClass::C3, 1.1),
        ];
        let s = summarize(&results, Figure::Throughput);
        assert_eq!(s.len(), 3, "C1, C3, AVG");
        assert_eq!(s[0].class, "C1");
        let snug_c1 = s[0].values.iter().find(|(n, _)| n == "SNUG").unwrap().1;
        assert!((snug_c1 - (1.2f64 * 1.3).sqrt()).abs() < 1e-12, "geomean");
        assert_eq!(s.last().unwrap().class, "AVG");
    }

    #[test]
    fn figure_table_has_scheme_columns() {
        let results = vec![fake_result(ComboClass::C5, 1.15)];
        let s = summarize(&results, Figure::Aws);
        let t = figure_table(&s, Figure::Aws);
        assert!(t.to_markdown().contains("SNUG"));
        assert_eq!(t.len(), 2, "C5 + AVG");
    }

    #[test]
    fn plan_presets_are_ordered() {
        assert!(
            CompareConfig::quick_plan().measure_cycles()
                < CompareConfig::default_eval_plan().measure_cycles()
        );
    }

    #[test]
    fn until_converged_defaults_derive_from_the_plan() {
        let cfg = CompareConfig::mid().until_converged(None, None);
        match cfg.plan.stop {
            StopSpec::Converged {
                window_cycles,
                rel_epsilon,
                max_cycles,
                ..
            } => {
                assert_eq!(window_cycles, 300_000, "a tenth of the mid window");
                assert_eq!(rel_epsilon, DEFAULT_REL_EPSILON);
                assert_eq!(max_cycles, 3_000_000, "budget becomes the ceiling");
            }
            other => panic!("expected a converged plan, got {other:?}"),
        }
        assert_eq!(
            cfg.plan.warmup_cycles,
            CompareConfig::mid().plan.warmup_cycles
        );

        let tuned = CompareConfig::mid().until_converged(Some(50_000), Some(0.02));
        match tuned.plan.stop {
            StopSpec::Converged {
                window_cycles,
                rel_epsilon,
                ..
            } => {
                assert_eq!(window_cycles, 50_000);
                assert_eq!(rel_epsilon, 0.02);
            }
            other => panic!("expected a converged plan, got {other:?}"),
        }
    }

    #[test]
    fn paced_shifted_fixed_runs_record_per_phase_means() {
        use snug_workloads::Benchmark;
        let combo = Combo {
            class: ComboClass::C1,
            apps: [Benchmark::Ammp; 4],
        };
        let mut cfg = CompareConfig::quick();
        cfg.plan = RunPlan::fixed(10_000, 60_000);
        let phase = PhaseSchedule::parse("40000:demand=300").unwrap();

        let run = run_point_phased(&combo, &SchemePoint::Snug, &cfg, Some(&phase));
        assert_eq!(
            run.plateaus.len(),
            2,
            "one mean per phase: {:?}",
            run.plateaus
        );
        assert!(run.plateaus.iter().all(|m| *m > 0.0), "{:?}", run.plateaus);

        // Recording is observation only: pausing at the boundary must
        // leave the measured result identical to a one-shot drive of
        // the same shifted session.
        let mut one_shot =
            session_for_phased(&combo, &SchemePoint::Snug.spec(&cfg), &cfg, Some(&phase));
        let r = one_shot.run_to_completion();
        assert_eq!(r.ipcs(), run.ipcs, "run_until pauses perturbed the run");

        // A shift outside the measured window records nothing.
        let late = PhaseSchedule::parse("500000:demand=300").unwrap();
        let run = run_point_phased(&combo, &SchemePoint::Snug, &cfg, Some(&late));
        assert!(run.plateaus.is_empty(), "{:?}", run.plateaus);

        // Stationary fixed runs stay empty too.
        let run = run_point_phased(&combo, &SchemePoint::Snug, &cfg, None);
        assert!(run.plateaus.is_empty(), "{:?}", run.plateaus);
    }
}
