//! The 13 benchmark models used by the paper's evaluation, calibrated to
//! Table 6's classification and (for ammp/vortex/applu) the bucket
//! distributions of Figures 1–3.
//!
//! | Class | App-level demand | Set-level | Benchmarks |
//! |-------|------------------|-----------|------------|
//! | A     | > 1 MB           | non-uniform | ammp, parser, vortex |
//! | B     | < 1 MB           | non-uniform | apsi, gcc |
//! | C     | > 1 MB           | uniform     | vpr, art, mcf, bzip2 |
//! | D     | < 1 MB           | uniform     | gzip, swim, mesa |
//!
//! `applu` (streaming, Fig. 3) appears only in the characterisation.
//!
//! Calibration rule of thumb: the baseline L2 slice is 16-way with 1024
//! sets of 64 B lines, so a mean per-set demand above 16 blocks means an
//! application-level demand above 1 MB.

use crate::model::{BenchmarkSpec, DemandComponent, DemandProfile, Pattern, Phase};
use serde::{Deserialize, Serialize};

/// Table 6 application classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// > 1 MB, set-level non-uniform.
    A,
    /// < 1 MB, set-level non-uniform.
    B,
    /// > 1 MB, set-level uniform.
    C,
    /// < 1 MB, set-level uniform.
    D,
    /// Pure streaming (applu; characterisation only).
    Streaming,
}

/// The benchmarks modelled from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Ammp,
    Parser,
    Vortex,
    Apsi,
    Gcc,
    Vpr,
    Art,
    Mcf,
    Bzip2,
    Gzip,
    Swim,
    Mesa,
    Applu,
}

impl Benchmark {
    /// All thirteen modelled benchmarks.
    pub const ALL: [Benchmark; 13] = [
        Benchmark::Ammp,
        Benchmark::Parser,
        Benchmark::Vortex,
        Benchmark::Apsi,
        Benchmark::Gcc,
        Benchmark::Vpr,
        Benchmark::Art,
        Benchmark::Mcf,
        Benchmark::Bzip2,
        Benchmark::Gzip,
        Benchmark::Swim,
        Benchmark::Mesa,
        Benchmark::Applu,
    ];

    /// Benchmark name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Ammp => "ammp",
            Benchmark::Parser => "parser",
            Benchmark::Vortex => "vortex",
            Benchmark::Apsi => "apsi",
            Benchmark::Gcc => "gcc",
            Benchmark::Vpr => "vpr",
            Benchmark::Art => "art",
            Benchmark::Mcf => "mcf",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Gzip => "gzip",
            Benchmark::Swim => "swim",
            Benchmark::Mesa => "mesa",
            Benchmark::Applu => "applu",
        }
    }

    /// Parse a paper-style name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Table 6 class.
    pub fn class(self) -> AppClass {
        match self {
            Benchmark::Ammp | Benchmark::Parser | Benchmark::Vortex => AppClass::A,
            Benchmark::Apsi | Benchmark::Gcc => AppClass::B,
            Benchmark::Vpr | Benchmark::Art | Benchmark::Mcf | Benchmark::Bzip2 => AppClass::C,
            Benchmark::Gzip | Benchmark::Swim | Benchmark::Mesa => AppClass::D,
            Benchmark::Applu => AppClass::Streaming,
        }
    }

    /// Whether the paper lists this benchmark as showing set-level
    /// non-uniformity of capacity demand (§2.3 names 7; the 5 used in
    /// the evaluation are classes A and B).
    pub fn set_level_nonuniform(self) -> bool {
        matches!(self.class(), AppClass::A | AppClass::B)
    }

    /// The synthetic model for this benchmark.
    pub fn spec(self) -> BenchmarkSpec {
        let c = |w, lo, hi| DemandComponent::new(w, lo, hi);
        let single = |components: Vec<DemandComponent>, near: f64, window: usize| Pattern::Pooled {
            phases: vec![Phase {
                fraction: 1.0,
                profile: DemandProfile {
                    components,
                    near_fraction: near,
                    near_window: window,
                },
            }],
            cycle_accesses: 40_000_000,
        };
        match self {
            // ---- Class A: > 1 MB, strongly non-uniform --------------
            // ammp (Fig. 1): ~40 % of sets need only 1–4 blocks through
            // the whole run; most of the rest exceed the 16-way baseline.
            Benchmark::Ammp => BenchmarkSpec {
                name: "ammp".into(),
                pattern: single(
                    vec![
                        c(0.38, 1, 4),
                        c(0.06, 9, 16),
                        c(0.38, 18, 26),
                        c(0.18, 30, 44),
                    ],
                    0.45,
                    14,
                ),
                gap_mean: 7,
                write_fraction: 0.06,
                dependent_fraction: 0.45,
                burst_mean: 2,
                seed: 0xA001,
            },
            Benchmark::Parser => BenchmarkSpec {
                name: "parser".into(),
                pattern: Pattern::Pooled {
                    phases: vec![
                        Phase {
                            fraction: 0.6,
                            profile: DemandProfile {
                                components: vec![
                                    c(0.28, 1, 4),
                                    c(0.12, 5, 8),
                                    c(0.40, 17, 26),
                                    c(0.20, 30, 40),
                                ],
                                near_fraction: 0.40,
                                near_window: 14,
                            },
                        },
                        Phase {
                            fraction: 0.4,
                            profile: DemandProfile {
                                components: vec![
                                    c(0.32, 1, 4),
                                    c(0.08, 5, 8),
                                    c(0.38, 18, 28),
                                    c(0.22, 30, 40),
                                ],
                                near_fraction: 0.40,
                                near_window: 14,
                            },
                        },
                    ],
                    cycle_accesses: 40_000_000,
                },
                gap_mean: 8,
                write_fraction: 0.05,
                dependent_fraction: 0.45,
                burst_mean: 2,
                seed: 0xA002,
            },
            // vortex (Fig. 2): a long middle phase (intervals ~405–792)
            // where ~15 % of sets need 1–4 blocks, ~9 % need 5–8 and
            // ~7 % need 9–12.
            Benchmark::Vortex => BenchmarkSpec {
                name: "vortex".into(),
                pattern: Pattern::Pooled {
                    phases: vec![
                        Phase {
                            fraction: 0.40,
                            profile: DemandProfile {
                                components: vec![
                                    c(0.10, 1, 4),
                                    c(0.08, 5, 8),
                                    c(0.07, 9, 12),
                                    c(0.50, 17, 26),
                                    c(0.25, 30, 44),
                                ],
                                near_fraction: 0.45,
                                near_window: 14,
                            },
                        },
                        Phase {
                            fraction: 0.39,
                            profile: DemandProfile {
                                components: vec![
                                    c(0.15, 1, 4),
                                    c(0.09, 5, 8),
                                    c(0.07, 9, 12),
                                    c(0.45, 17, 26),
                                    c(0.24, 30, 44),
                                ],
                                near_fraction: 0.45,
                                near_window: 14,
                            },
                        },
                        Phase {
                            fraction: 0.21,
                            profile: DemandProfile {
                                components: vec![
                                    c(0.10, 1, 4),
                                    c(0.08, 5, 8),
                                    c(0.07, 9, 12),
                                    c(0.50, 17, 26),
                                    c(0.25, 30, 44),
                                ],
                                near_fraction: 0.45,
                                near_window: 14,
                            },
                        },
                    ],
                    cycle_accesses: 40_000_000,
                },
                gap_mean: 7,
                write_fraction: 0.08,
                dependent_fraction: 0.4,
                burst_mean: 2,
                seed: 0xA003,
            },
            // ---- Class B: < 1 MB, non-uniform ------------------------
            Benchmark::Apsi => BenchmarkSpec {
                name: "apsi".into(),
                pattern: single(
                    vec![
                        c(0.45, 1, 4),
                        c(0.25, 5, 8),
                        c(0.10, 9, 16),
                        c(0.20, 17, 24),
                    ],
                    0.50,
                    12,
                ),
                gap_mean: 8,
                write_fraction: 0.07,
                dependent_fraction: 0.35,
                burst_mean: 2,
                seed: 0xB001,
            },
            Benchmark::Gcc => BenchmarkSpec {
                name: "gcc".into(),
                pattern: Pattern::Pooled {
                    phases: vec![
                        Phase {
                            fraction: 0.5,
                            profile: DemandProfile {
                                components: vec![
                                    c(0.50, 1, 4),
                                    c(0.15, 5, 12),
                                    c(0.15, 13, 16),
                                    c(0.20, 17, 28),
                                ],
                                near_fraction: 0.50,
                                near_window: 12,
                            },
                        },
                        Phase {
                            fraction: 0.5,
                            profile: DemandProfile {
                                components: vec![
                                    c(0.45, 1, 4),
                                    c(0.20, 5, 12),
                                    c(0.15, 13, 16),
                                    c(0.20, 18, 26),
                                ],
                                near_fraction: 0.50,
                                near_window: 12,
                            },
                        },
                    ],
                    cycle_accesses: 40_000_000,
                },
                gap_mean: 8,
                write_fraction: 0.10,
                dependent_fraction: 0.4,
                burst_mean: 2,
                seed: 0xB002,
            },
            // ---- Class C: > 1 MB, uniform ----------------------------
            // Working sets reach well beyond twice the slice capacity
            // for art/mcf (their real footprints are tens to hundreds of
            // MB): spilled victims mostly die before re-reference, which
            // is why eviction-driven CC cannot help the C2 stress tests.
            // Reuse reaches mid stack depths (near_window), so capacity
            // stolen by received spills destroys real hits.
            Benchmark::Vpr => BenchmarkSpec {
                name: "vpr".into(),
                pattern: single(vec![c(1.0, 18, 26)], 0.50, 14),
                gap_mean: 8,
                write_fraction: 0.10,
                dependent_fraction: 0.45,
                burst_mean: 2,
                seed: 0xC001,
            },
            Benchmark::Art => BenchmarkSpec {
                name: "art".into(),
                pattern: single(vec![c(1.0, 30, 44)], 0.45, 14),
                gap_mean: 5,
                write_fraction: 0.05,
                dependent_fraction: 0.55,
                burst_mean: 1,
                seed: 0xC002,
            },
            Benchmark::Mcf => BenchmarkSpec {
                name: "mcf".into(),
                pattern: single(vec![c(1.0, 44, 64)], 0.40, 14),
                gap_mean: 3,
                write_fraction: 0.05,
                dependent_fraction: 0.65,
                burst_mean: 1,
                seed: 0xC003,
            },
            Benchmark::Bzip2 => BenchmarkSpec {
                name: "bzip2".into(),
                pattern: single(vec![c(1.0, 17, 24)], 0.55, 14),
                gap_mean: 8,
                write_fraction: 0.12,
                dependent_fraction: 0.4,
                burst_mean: 2,
                seed: 0xC004,
            },
            // ---- Class D: < 1 MB, uniform ----------------------------
            Benchmark::Gzip => BenchmarkSpec {
                name: "gzip".into(),
                pattern: single(vec![c(1.0, 2, 6)], 0.55, 4),
                gap_mean: 9,
                write_fraction: 0.15,
                dependent_fraction: 0.3,
                burst_mean: 3,
                seed: 0xD001,
            },
            Benchmark::Swim => BenchmarkSpec {
                name: "swim".into(),
                pattern: single(vec![c(1.0, 1, 4)], 0.35, 2),
                gap_mean: 6,
                write_fraction: 0.20,
                dependent_fraction: 0.15,
                burst_mean: 3,
                seed: 0xD002,
            },
            Benchmark::Mesa => BenchmarkSpec {
                name: "mesa".into(),
                pattern: single(vec![c(1.0, 4, 8)], 0.55, 4),
                gap_mean: 10,
                write_fraction: 0.10,
                dependent_fraction: 0.25,
                burst_mean: 3,
                seed: 0xD003,
            },
            // ---- Streaming (Fig. 3) ----------------------------------
            Benchmark::Applu => BenchmarkSpec {
                name: "applu".into(),
                pattern: Pattern::Streaming,
                gap_mean: 6,
                write_fraction: 0.15,
                dependent_fraction: 0.1,
                burst_mean: 3,
                seed: 0xE001,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Baseline associativity: mean demand above it ⇔ app-level demand
    /// above the 1 MB slice.
    const A_BASELINE: f64 = 16.0;

    #[test]
    fn class_membership_matches_table6() {
        use AppClass::*;
        let expect = [
            (Benchmark::Ammp, A),
            (Benchmark::Parser, A),
            (Benchmark::Vortex, A),
            (Benchmark::Apsi, B),
            (Benchmark::Gcc, B),
            (Benchmark::Vpr, C),
            (Benchmark::Art, C),
            (Benchmark::Mcf, C),
            (Benchmark::Bzip2, C),
            (Benchmark::Gzip, D),
            (Benchmark::Swim, D),
            (Benchmark::Mesa, D),
            (Benchmark::Applu, Streaming),
        ];
        for (b, c) in expect {
            assert_eq!(b.class(), c, "{}", b.name());
        }
    }

    #[test]
    fn class_a_and_c_exceed_one_megabyte() {
        for b in Benchmark::ALL {
            let mean = b.spec().mean_demand();
            match b.class() {
                AppClass::A | AppClass::C => {
                    assert!(
                        mean > A_BASELINE,
                        "{}: mean demand {mean} must be > 16",
                        b.name()
                    )
                }
                AppClass::B | AppClass::D => {
                    assert!(
                        mean < A_BASELINE,
                        "{}: mean demand {mean} must be < 16",
                        b.name()
                    )
                }
                AppClass::Streaming => assert!(mean <= 4.0),
            }
        }
    }

    #[test]
    fn nonuniform_flag_covers_classes_a_b() {
        assert!(Benchmark::Ammp.set_level_nonuniform());
        assert!(Benchmark::Apsi.set_level_nonuniform());
        assert!(!Benchmark::Mcf.set_level_nonuniform());
        assert!(!Benchmark::Gzip.set_level_nonuniform());
        assert!(!Benchmark::Applu.set_level_nonuniform());
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("quake"), None);
    }

    #[test]
    fn specs_have_distinct_seeds() {
        let mut seeds: Vec<u64> = Benchmark::ALL.iter().map(|b| b.spec().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 13);
    }

    #[test]
    fn ammp_has_large_low_demand_fraction() {
        // Fig. 1: ~40 % of ammp's sets need only 1–4 blocks.
        let spec = Benchmark::Ammp.spec();
        let crate::model::Pattern::Pooled { phases, .. } = &spec.pattern else {
            panic!("ammp is pooled")
        };
        let demands = phases[0].profile.assign(1024, spec.seed);
        let low = demands.iter().filter(|&&d| d <= 4).count() as f64 / 1024.0;
        assert!((low - 0.38).abs() < 0.06, "low-demand fraction {low}");
    }
}
