//! Phase-change schedules: deterministic mid-run workload shifts.
//!
//! A [`PhaseSchedule`] is an ordered list of [`StreamShift`]s — at
//! frontier cycle `c`, re-parameterise the selected cores' streams
//! (demand scale, near-reuse fraction, streaming switch, profile swap;
//! see [`sim_mem::ShiftDirective`]). The simulator applies each shift at
//! the first frontier boundary at or past its cycle, so a shifted run is
//! deterministic across stepping interleavings and snapshot/restore.
//!
//! The paper's core claim is that SNUG's stage-based G/T relatching
//! *adapts*: after a shift, takers and givers swap roles and the next
//! identification stage re-latches them, where a statically configured
//! scheme keeps serving the stale assignment. A schedule is the scenario
//! axis that exercises exactly that — the stationary 21-combo sweep
//! never does.
//!
//! Schedules parse from the CLI's `--phase-shift` SPEC strings
//! (semicolon-separated shifts, `CYCLE:DIRECTIVE[@CORES]`) and render
//! back canonically; [`PhaseSchedule::fingerprint`] is that canonical
//! form, which the harness hashes into shifted runs' content keys.

use sim_mem::{ShiftDirective, StreamShift};

/// An ordered, deterministic schedule of mid-run workload shifts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhaseSchedule {
    shifts: Vec<StreamShift>,
}

impl PhaseSchedule {
    /// Build a schedule from shifts (sorted by cycle; same-cycle shifts
    /// keep their given order).
    pub fn new(mut shifts: Vec<StreamShift>) -> Self {
        assert!(
            !shifts.is_empty(),
            "a phase schedule needs at least one shift"
        );
        shifts.sort_by_key(|s| s.at_cycle);
        PhaseSchedule { shifts }
    }

    /// A single all-core shift — the common scenario shape.
    pub fn single(at_cycle: u64, directive: ShiftDirective) -> Self {
        PhaseSchedule::new(vec![StreamShift::all_cores(at_cycle, directive)])
    }

    /// Parse a semicolon-separated SPEC string, e.g.
    /// `"1800000:demand=200"` or `"1500000:near=10;2400000:profile=mcf@0"`.
    ///
    /// `profile=` names are validated against the modelled benchmarks
    /// here — the directive grammar lives in `sim-mem`, which cannot
    /// know them — because a stream quietly ignores a directive it
    /// cannot apply: a typo'd name would otherwise produce a "shifted"
    /// run (distinct content keys, rendered boundary events) whose
    /// workload never actually changed.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let shifts = spec
            .split(';')
            .map(str::trim)
            .filter(|part| !part.is_empty())
            .map(str::parse)
            .collect::<Result<Vec<StreamShift>, String>>()?;
        if shifts.is_empty() {
            return Err("empty phase-shift spec".into());
        }
        for shift in &shifts {
            if let ShiftDirective::Profile { name } = &shift.directive {
                if crate::spec::Benchmark::from_name(name).is_none() {
                    return Err(format!(
                        "`profile={name}`: unknown benchmark (the modelled benchmarks are \
                         {})",
                        crate::spec::Benchmark::ALL
                            .iter()
                            .map(|b| b.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
        }
        Ok(PhaseSchedule::new(shifts))
    }

    /// The shifts in cycle order.
    pub fn shifts(&self) -> &[StreamShift] {
        &self.shifts
    }

    /// Number of shifts.
    pub fn len(&self) -> usize {
        self.shifts.len()
    }

    /// Whether the schedule holds no shifts (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.shifts.is_empty()
    }

    /// Canonical string form — stable under parse → render round trips,
    /// so it doubles as the content-key fragment for shifted runs.
    /// (The re-convergence phase boundaries are derived from the raw
    /// shifts by `sim_cmp::SessionBuilder::build`, the one place that
    /// knows the plan's window.)
    pub fn fingerprint(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for PhaseSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, shift) in self.shifts.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{shift}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for PhaseSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PhaseSchedule::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sorts_and_round_trips() {
        let sched = PhaseSchedule::parse("2400000:near=10; 1_800_000:demand=200").unwrap();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.shifts()[0].at_cycle, 1_800_000, "sorted by cycle");
        let canon = sched.fingerprint();
        assert_eq!(canon, "1800000:demand=200;2400000:near=10");
        assert_eq!(canon.parse::<PhaseSchedule>().unwrap(), sched);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(PhaseSchedule::parse("").is_err());
        assert!(PhaseSchedule::parse(";;").is_err());
        assert!(PhaseSchedule::parse("100:warp=9").is_err());
    }

    #[test]
    fn unknown_profile_names_are_rejected_at_parse_time() {
        // A typo'd benchmark would silently leave the workload
        // stationary while keying the run as shifted.
        let err = PhaseSchedule::parse("100:profile=mfc").unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
        assert!(PhaseSchedule::parse("100:profile=mcf").is_ok());
    }

    #[test]
    fn single_builds_an_all_core_shift() {
        let sched = PhaseSchedule::single(1_000, ShiftDirective::Streaming);
        assert_eq!(sched.shifts().len(), 1);
        assert!(sched.shifts()[0].cores.is_empty());
        assert_eq!(sched.fingerprint(), "1000:streaming");
    }
}
