//! # snug-workloads — synthetic SPEC CPU2000 workload models
//!
//! The paper evaluates on SPEC CPU2000, which is unavailable offline;
//! this crate provides deterministic synthetic address-stream generators
//! calibrated to the *set-level capacity-demand profiles* the paper
//! reports (Table 6 classes; Figures 1–3). The substitution preserves
//! the behaviour under test because the SNUG/DSR/CC mechanisms observe
//! only per-set capacity demand and reuse depth — a stream matching
//! those profiles exercises the same policy decisions as the original
//! binaries would.
//!
//! * [`model`] — the generator engine (demand mixtures, phases,
//!   near/far reference patterns, streaming);
//! * [`spec`] — the 13 calibrated benchmark models;
//! * [`combos`] — Tables 7–8: the 6 combination classes and 21
//!   quad-core workload combinations;
//! * [`phase`] — phase-change schedules: deterministic mid-run shifts
//!   of the per-core streams (the scenario axis that exercises SNUG's
//!   stage-based adaptation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combos;
pub mod model;
pub mod phase;
pub mod spec;

pub use combos::{all_combos, combos_in_class, Combo, ComboClass};
pub use model::{BenchmarkSpec, DemandComponent, DemandProfile, Pattern, Phase, SyntheticStream};
pub use phase::PhaseSchedule;
pub use spec::{AppClass, Benchmark};
