//! The synthetic workload engine.
//!
//! SPEC CPU2000 binaries and traces are not available offline, so each
//! benchmark the paper evaluates is replaced by a synthetic address-
//! stream generator calibrated to the *set-level capacity-demand
//! profile* the paper reports for it (Table 6 classes; Figs. 1–3 for
//! ammp/vortex/applu). The SNUG/DSR/CC mechanisms respond only to this
//! profile, so a stream that matches it exercises the same policy
//! behaviour (the crate-level docs state the substitution argument).
//!
//! A benchmark model assigns every L2 set `s` a demand `d(s)` — the
//! number of distinct blocks that cycle through the set — drawn from a
//! mixture of ranges. References to a set follow a near/far mixture:
//!
//! * **far** references mix a cyclic walk over the set's block pool
//!   (loop-like reuse whose re-references arrive predictably soon after
//!   eviction — the pattern victim caching exploits) with uniform random
//!   picks (so LRU stack distances spread over `1..=d(s)` and hit rates
//!   degrade gracefully instead of falling off a cliff at the
//!   associativity); `block_required ≈ d(s)` either way, pinning the
//!   set's Fig. 1-style bucket;
//! * **near** references re-touch recently used blocks, producing
//!   shallow-distance hits (real programs hit at a spread of depths, and
//!   these hits are what careless spilling destroys);
//! * consecutive references **burst** on the same block (spatial
//!   locality within a line), which is what gives the L1 its hit rate.

use rand::rngs::SmallRng;
use rand::{Divisor, Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_mem::{Access, AccessKind, Addr, CoreOp, Geometry, OpStream};

/// One component of a per-set demand mixture: `weight` fraction of sets
/// get a demand drawn uniformly from `lo..=hi` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandComponent {
    /// Fraction of sets (weights in a profile are normalised).
    pub weight: f64,
    /// Minimum demand (blocks).
    pub lo: u16,
    /// Maximum demand (blocks), inclusive.
    pub hi: u16,
}

impl DemandComponent {
    /// Convenience constructor.
    pub const fn new(weight: f64, lo: u16, hi: u16) -> Self {
        DemandComponent { weight, lo, hi }
    }
}

/// A per-set demand profile for one program phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandProfile {
    /// The mixture. Weights are normalised at assignment time.
    pub components: Vec<DemandComponent>,
    /// Fraction of references that are near-reuse (shallow LRU distance).
    pub near_fraction: f64,
    /// How far back near references reach (in blocks).
    pub near_window: usize,
}

impl DemandProfile {
    /// Uniform demand profile (class C/D): every set in `lo..=hi`.
    pub fn uniform(lo: u16, hi: u16, near_fraction: f64) -> Self {
        DemandProfile {
            components: vec![DemandComponent::new(1.0, lo, hi)],
            near_fraction,
            near_window: 4,
        }
    }

    /// Assign a demand value to every set, deterministically from `seed`.
    /// The same seed yields the same per-set map — co-scheduled copies of
    /// one benchmark share their demand *profile* (it is a property of
    /// the program) even though their address spaces are disjoint.
    pub fn assign(&self, num_sets: usize, seed: u64) -> Vec<u16> {
        let total: f64 = self.components.iter().map(|c| c.weight).sum();
        assert!(total > 0.0, "profile must have positive weight");
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..num_sets)
            .map(|_| {
                let mut pick = rng.gen::<f64>() * total;
                for c in &self.components {
                    // snug-lint: allow(panic-audit, "mixture models are built with at least one component")
                    if pick < c.weight || std::ptr::eq(c, self.components.last().unwrap()) {
                        return rng.gen_range(c.lo..=c.hi.max(c.lo));
                    }
                    pick -= c.weight;
                }
                // snug-lint: allow(panic-audit, "the last-component guard above always returns on the final iteration")
                unreachable!("mixture sampling fell through")
            })
            .collect()
    }
}

/// One phase of a benchmark: a fraction of the phase cycle spent under a
/// given profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Fraction of the phase cycle (normalised across phases).
    pub fraction: f64,
    /// Demand profile during the phase.
    pub profile: DemandProfile,
}

/// The reference-pattern family of a benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Pool-based reuse: per-set block pools sized by the demand profile,
    /// cycled far/near. One or more phases.
    Pooled {
        /// The phase schedule (repeats cyclically).
        phases: Vec<Phase>,
        /// Accesses per full phase cycle.
        cycle_accesses: u64,
    },
    /// Pure streaming (the paper's `applu`, Fig. 3): sequential blocks,
    /// never revisited. All sets show demand 1–4 and nothing but
    /// compulsory misses.
    Streaming,
}

/// A complete benchmark model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. "ammp").
    pub name: String,
    /// Reference pattern.
    pub pattern: Pattern,
    /// Mean non-memory instructions between references.
    pub gap_mean: u32,
    /// Fraction of references that are stores.
    pub write_fraction: f64,
    /// Fraction of loads whose consumers immediately depend on them
    /// (pointer chasing): their miss latency is fully exposed instead of
    /// overlapping. High for mcf/art, low for streaming codes.
    pub dependent_fraction: f64,
    /// Mean number of extra back-to-back references to the same block
    /// (spatial locality within a 64 B line). This is what the L1
    /// absorbs.
    pub burst_mean: u32,
    /// Base seed: fixes the demand map and the reference sequence.
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Instantiate an [`OpStream`] for one core.
    ///
    /// * `geo` — the L2 slice geometry the demand profile targets;
    /// * `core` — used to give each co-scheduled copy a disjoint address
    ///   space (multiprogrammed workloads share no data) and decorrelated
    ///   reference interleaving, while the per-set demand map stays that
    ///   of the program.
    pub fn stream(&self, geo: Geometry, core: usize) -> SyntheticStream {
        SyntheticStream::new(self.clone(), geo, core)
    }

    /// Average demand in blocks per set (first phase), used to sanity-
    /// check class membership (>1 MB ⇔ avg > baseline associativity).
    pub fn mean_demand(&self) -> f64 {
        match &self.pattern {
            Pattern::Streaming => 1.0,
            Pattern::Pooled { phases, .. } => {
                let p = &phases[0].profile;
                let total: f64 = p.components.iter().map(|c| c.weight).sum();
                p.components
                    .iter()
                    .map(|c| c.weight / total * (c.lo as f64 + c.hi as f64) / 2.0)
                    .sum()
            }
        }
    }
}

/// Per-set generator state.
#[derive(Debug, Clone)]
struct SetState {
    /// Pool size (demand d(s)).
    demand: u16,
    /// Cyclic-walk cursor for loop-like far references.
    cursor: u16,
    /// Ring of recently referenced pool indices (near-reuse window).
    recent: [u16; RECENT_CAP],
    /// Valid entries in `recent`.
    recent_len: u8,
    /// Next write position in `recent`.
    recent_pos: u8,
}

/// Fraction of far references that follow the cyclic walk (the rest are
/// uniform random over the pool).
const CYCLIC_FRACTION: f64 = 0.6;

/// Capacity of the per-set recency ring (≥ the largest near window).
const RECENT_CAP: usize = 16;

impl SetState {
    fn new(demand: u16) -> Self {
        SetState {
            demand,
            cursor: 0,
            recent: [0; RECENT_CAP],
            recent_len: 0,
            recent_pos: 0,
        }
    }

    fn remember(&mut self, idx: u16) {
        self.recent[self.recent_pos as usize] = idx;
        self.recent_pos = ((self.recent_pos as usize + 1) % RECENT_CAP) as u8;
        if (self.recent_len as usize) < RECENT_CAP {
            self.recent_len += 1;
        }
    }
}

/// The synthetic op stream for one core.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    spec: BenchmarkSpec,
    geo: Geometry,
    /// High address bits distinguishing this core's address space.
    addr_base_blocks: u64,
    rng: SmallRng,
    sets: Vec<SetState>,
    /// Cumulative set-sampling distribution (weights ∝ demand).
    set_cdf: Vec<f64>,
    /// Guide table over `set_cdf`: bucket `b` → first index whose
    /// cumulative value maps to bucket `b` or later under
    /// `guide_scale`. Turns the per-reference inverse-CDF binary search
    /// (ten data-dependent branches over 8 KB of `f64`s) into one table
    /// load plus a short forward scan with the identical result.
    set_guide: Vec<u32>,
    /// Bucket mapping for [`SyntheticStream::set_guide`]:
    /// `bucket = (value * guide_scale) as usize`, clamped.
    guide_scale: f64,
    access_count: u64,
    /// `access_count % cycle_len`, maintained incrementally so the hot
    /// path never divides (`u64::MAX`-pinned position for streaming).
    cycle_pos: u64,
    /// Accesses per phase cycle (`u64::MAX` for streaming patterns,
    /// which never wrap).
    cycle_len: u64,
    /// First cycle position past the current phase; `cycle_pos`
    /// reaching it (or wrapping) triggers a phase recomputation.
    phase_end: u64,
    /// Reciprocal of the gap-draw width `2·gap_mean + 1`.
    gap_width: Divisor,
    /// Reciprocal of the burst-draw width `2·burst_mean + 1`.
    burst_width: Divisor,
    current_phase: usize,
    /// Streaming cursor (blocks).
    stream_cursor: u64,
    /// Remaining repeats of the current block (spatial-locality burst).
    burst_remaining: u32,
    /// The block being repeated.
    burst_block: u64,
    /// Precomputed phase boundaries in accesses within one cycle.
    phase_bounds: Vec<u64>,
}

impl SyntheticStream {
    fn new(spec: BenchmarkSpec, geo: Geometry, core: usize) -> Self {
        // Address spaces are separated by a generous stride in block
        // space; tags stay well clear of each other across cores.
        let addr_base_blocks = (core as u64 + 1) << 34;
        let rng = SmallRng::seed_from_u64(
            spec.seed ^ (core as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut s = SyntheticStream {
            geo,
            addr_base_blocks,
            rng,
            sets: Vec::new(),
            set_cdf: Vec::new(),
            set_guide: Vec::new(),
            guide_scale: 0.0,
            access_count: 0,
            cycle_pos: 0,
            cycle_len: u64::MAX,
            phase_end: 0,
            gap_width: Divisor::new(spec.gap_mean as u64 * 2 + 1),
            burst_width: Divisor::new(spec.burst_mean as u64 * 2 + 1),
            current_phase: usize::MAX,
            stream_cursor: 0,
            burst_remaining: 0,
            burst_block: 0,
            phase_bounds: Vec::new(),
            spec,
        };
        s.compute_phase_bounds();
        s.enter_phase(0);
        s.init_cycle_state();
        s
    }

    /// Re-derive the incremental cycle-position state from
    /// `access_count` (after construction or a spec mutation).
    /// `phase_end = 0` forces the next reference to recompute its phase
    /// exactly, so the incremental path can never go stale.
    fn init_cycle_state(&mut self) {
        match &self.spec.pattern {
            Pattern::Pooled { cycle_accesses, .. } => {
                self.cycle_len = (*cycle_accesses).max(1);
                self.cycle_pos = self.access_count % self.cycle_len;
                self.phase_end = 0;
            }
            Pattern::Streaming => {
                self.cycle_len = u64::MAX;
                self.cycle_pos = 0;
                self.phase_end = u64::MAX;
            }
        }
    }

    /// The phase owning cycle position `pos`: same lookup as
    /// [`SyntheticStream::phase_at`], over a position instead of an
    /// absolute access count.
    fn phase_index(&self, pos: u64) -> usize {
        self.phase_bounds.iter().position(|&b| pos < b).unwrap_or(0)
    }

    fn compute_phase_bounds(&mut self) {
        if let Pattern::Pooled {
            phases,
            cycle_accesses,
        } = &self.spec.pattern
        {
            let total: f64 = phases.iter().map(|p| p.fraction).sum();
            let mut acc = 0.0;
            self.phase_bounds = phases
                .iter()
                .map(|p| {
                    acc += p.fraction / total;
                    (acc * *cycle_accesses as f64) as u64
                })
                .collect();
            // Guard against rounding leaving the last bound short.
            if let Some(last) = self.phase_bounds.last_mut() {
                *last = *cycle_accesses;
            }
        }
    }

    fn phase_at(&self, access: u64) -> usize {
        match &self.spec.pattern {
            Pattern::Streaming => 0,
            Pattern::Pooled { cycle_accesses, .. } => {
                let pos = access % cycle_accesses;
                self.phase_bounds.iter().position(|&b| pos < b).unwrap_or(0)
            }
        }
    }

    fn enter_phase(&mut self, phase: usize) {
        self.current_phase = phase;
        let Pattern::Pooled { phases, .. } = &self.spec.pattern else {
            return;
        };
        let profile = &phases[phase].profile;
        // Demand map is a property of the program: seed does not include
        // the core, so co-scheduled copies agree set-by-set.
        let demands = profile.assign(
            self.geo.num_sets as usize,
            self.spec.seed.wrapping_add(phase as u64 * 0x5851_F42D),
        );
        if self.sets.is_empty() {
            self.sets = demands.iter().map(|&d| SetState::new(d)).collect();
        } else {
            for (st, &d) in self.sets.iter_mut().zip(demands.iter()) {
                st.demand = d;
                st.cursor %= d.max(1);
                // Forget recent indices beyond the shrunk pool.
                if st
                    .recent
                    .iter()
                    .take(st.recent_len as usize)
                    .any(|&i| i >= d)
                {
                    st.recent_len = 0;
                    st.recent_pos = 0;
                }
            }
        }
        // Traffic to a set scales with its working-set size.
        let mut acc = 0.0;
        self.set_cdf = self
            .sets
            .iter()
            .map(|st| {
                acc += st.demand as f64;
                acc
            })
            .collect();
        self.build_set_guide();
    }

    /// Rebuild the inverse-CDF guide table for the current `set_cdf`.
    ///
    /// Correctness does not depend on floating-point bucket boundaries:
    /// the build applies the *same* monotone mapping
    /// `v ↦ (v * guide_scale) as usize` to the cumulative values that
    /// the sampler applies to the drawn point, so the guided start index
    /// is always at or below the exact partition point and the forward
    /// scan lands on it precisely.
    fn build_set_guide(&mut self) {
        let n = self.set_cdf.len();
        let buckets = (n * 2).next_power_of_two().max(1);
        let total = self.set_cdf.last().copied().unwrap_or(0.0);
        self.guide_scale = buckets as f64 / total;
        let bucket_of = |scale: f64, v: f64| -> usize { ((v * scale) as usize).min(buckets - 1) };
        self.set_guide.clear();
        self.set_guide.reserve(buckets);
        let mut i = 0usize;
        for b in 0..buckets {
            while i < n && bucket_of(self.guide_scale, self.set_cdf[i]) < b {
                i += 1;
            }
            self.set_guide.push(i as u32);
        }
    }

    /// Guided inverse-CDF walk: identical to
    /// `set_cdf.partition_point(|&c| c <= x)` (see `build_set_guide`),
    /// without the binary search's data-dependent branches.
    fn locate_cdf(&self, x: f64) -> usize {
        let b = ((x * self.guide_scale) as usize).min(self.set_guide.len() - 1);
        let mut i = self.set_guide[b] as usize;
        let n = self.set_cdf.len();
        while i < n && self.set_cdf[i] <= x {
            i += 1;
        }
        i
    }

    fn sample_set(&mut self) -> usize {
        // snug-lint: allow(panic-audit, "the cdf is rebuilt from a non-empty component list before sampling")
        let total = *self.set_cdf.last().expect("non-empty cdf");
        let x = self.rng.gen::<f64>() * total;
        self.locate_cdf(x).min(self.sets.len() - 1)
    }

    fn next_block(&mut self) -> u64 {
        let (near_fraction, near_window) = match &self.spec.pattern {
            Pattern::Streaming => {
                let b = self.addr_base_blocks + self.stream_cursor;
                self.stream_cursor += 1;
                return b;
            }
            Pattern::Pooled { phases, .. } => {
                let p = &phases[self.current_phase].profile;
                (p.near_fraction, p.near_window)
            }
        };
        let set = self.sample_set();
        let near_draw = self.rng.gen::<f64>();
        let cyclic_draw = self.rng.gen::<f64>();
        let far_draw = self.rng.gen_range(0u64..u64::MAX);
        let st = &mut self.sets[set];
        let d = st.demand.max(1);
        let window = (near_window.min(st.recent_len as usize)) as u64;
        let idx = if near_draw < near_fraction && window > 0 {
            // Re-touch one of the recently used blocks of this set. The
            // usual window widths are powers of two: reduce by mask then
            // (the same remainder, minus the divide).
            let back = if window & (window - 1) == 0 {
                (far_draw & (window - 1)) as usize
            } else {
                (far_draw % window) as usize
            };
            let pos = (st.recent_pos as usize + RECENT_CAP - 1 - back) % RECENT_CAP;
            st.recent[pos]
        } else if cyclic_draw < CYCLIC_FRACTION {
            // Loop-like walk: re-references arrive soon after eviction.
            let i = st.cursor;
            st.cursor = if st.cursor + 1 >= d { 0 } else { st.cursor + 1 };
            i
        } else {
            // Uniform random over the pool: stack distances spread over
            // 1..=d, so capacity helps smoothly up to d blocks.
            (far_draw % d as u64) as u16
        };
        st.remember(idx);
        // Block address: per-set tag pools, disjoint across sets via the
        // index bits themselves. The pool index is spread by an odd
        // multiplier so pool tags scatter across their low bits — real
        // working sets do not occupy consecutive tags, and structured
        // tag low bits would alias pathologically in the bank-interleaved
        // L2S mapping (which hashes tag bits into the bank-set index).
        let tag = self.addr_base_blocks >> self.geo.index_bits();
        let scattered = idx as u64 * 37;
        self.geo.compose(set, tag + scattered).0
    }

    /// The demand assigned to `set` in the current phase (test hook).
    pub fn demand_of(&self, set: usize) -> u16 {
        self.sets.get(set).map_or(1, |s| s.demand)
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Re-derive phase bounds and per-set state from the (mutated) spec:
    /// the shift entry point's epilogue. Re-entering the current phase
    /// re-assigns the demand map deterministically from the spec's seed,
    /// so co-scheduled copies of one program keep agreeing set-by-set
    /// after a shift.
    fn reshape(&mut self) {
        self.compute_phase_bounds();
        self.enter_phase(self.phase_at(self.access_count));
        self.init_cycle_state();
        // A profile shift swaps the whole spec: refresh the reciprocals.
        self.gap_width = Divisor::new(self.spec.gap_mean as u64 * 2 + 1);
        self.burst_width = Divisor::new(self.spec.burst_mean as u64 * 2 + 1);
    }
}

impl SyntheticStream {
    /// Apply a mid-run shift directive (see [`sim_mem::ShiftDirective`])
    /// by mutating the *spec* — not just the live per-set state — so the
    /// change survives the benchmark's own internal phase cycling
    /// (entering a later phase re-derives demands from the mutated
    /// profiles instead of silently undoing the shift).
    fn shift(&mut self, directive: &sim_mem::ShiftDirective) -> bool {
        use sim_mem::ShiftDirective;
        match directive {
            ShiftDirective::DemandScale { percent } => {
                let Pattern::Pooled { phases, .. } = &mut self.spec.pattern else {
                    return false;
                };
                for phase in phases.iter_mut() {
                    for c in &mut phase.profile.components {
                        let scale = |v: u16| -> u16 {
                            ((v as u64 * *percent as u64) / 100).clamp(1, u16::MAX as u64) as u16
                        };
                        c.lo = scale(c.lo);
                        c.hi = scale(c.hi).max(c.lo);
                    }
                }
                self.reshape();
                true
            }
            ShiftDirective::NearFraction { percent } => {
                let Pattern::Pooled { phases, .. } = &mut self.spec.pattern else {
                    return false;
                };
                let fraction = (*percent as f64 / 100.0).min(1.0);
                for phase in phases.iter_mut() {
                    phase.profile.near_fraction = fraction;
                }
                // Near-fraction only biases future draws; the demand map
                // is untouched, so no reshape is needed.
                true
            }
            ShiftDirective::Streaming => {
                self.spec.pattern = Pattern::Streaming;
                self.reshape();
                true
            }
            ShiftDirective::Profile { name } => {
                let Some(benchmark) = crate::spec::Benchmark::from_name(name) else {
                    return false;
                };
                let new = benchmark.spec();
                // Keep the label: results stay attributed to the core's
                // original program; everything the generator draws from
                // becomes the new benchmark's.
                self.spec = BenchmarkSpec {
                    name: std::mem::take(&mut self.spec.name),
                    ..new
                };
                self.reshape();
                true
            }
        }
    }
}

impl OpStream for SyntheticStream {
    fn next_op(&mut self) -> CoreOp {
        // Incremental phase tracking: `cycle_pos` mirrors
        // `access_count % cycle_accesses`, so the per-reference phase
        // lookup (a divide plus a bounds scan) only runs when the
        // position actually crosses a phase boundary or wraps.
        if self.cycle_pos >= self.phase_end {
            let phase = self.phase_index(self.cycle_pos);
            if phase != self.current_phase {
                self.enter_phase(phase);
            }
            self.phase_end = self.phase_bounds.get(phase).copied().unwrap_or(u64::MAX);
        }
        self.access_count += 1;
        self.cycle_pos += 1;
        if self.cycle_pos >= self.cycle_len {
            self.cycle_pos = 0;
            // Force an exact phase recomputation at the wrap.
            self.phase_end = 0;
        }
        let block = if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            self.burst_block
        } else {
            let b = self.next_block();
            self.burst_block = b;
            if self.spec.burst_mean > 0 {
                self.burst_remaining = self.burst_width.rem(self.rng.next_u64()) as u32;
            }
            b
        };
        let byte = (block << self.geo.block_bytes.trailing_zeros())
            | (self.rng.gen_range(0..self.geo.block_bytes / 8) * 8);
        let kind = if self.rng.gen::<f64>() < self.spec.write_fraction {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let critical =
            kind == AccessKind::Load && self.rng.gen::<f64>() < self.spec.dependent_fraction;
        // Uniform gap in [0, 2·mean] keeps the requested mean with some
        // jitter; deterministic for a fixed seed.
        let gap = self.gap_width.rem(self.rng.next_u64()) as u32;
        CoreOp {
            gap,
            access: Access {
                addr: Addr(byte),
                kind,
            },
            critical,
        }
    }

    fn label(&self) -> &str {
        &self.spec.name
    }

    fn clone_dyn(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }

    fn apply_shift(&mut self, directive: &sim_mem::ShiftDirective) -> bool {
        self.shift(directive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pooled_spec(components: Vec<DemandComponent>, near: f64) -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test".into(),
            pattern: Pattern::Pooled {
                phases: vec![Phase {
                    fraction: 1.0,
                    profile: DemandProfile {
                        components,
                        near_fraction: near,
                        near_window: 4,
                    },
                }],
                cycle_accesses: 1_000_000,
            },
            gap_mean: 3,
            write_fraction: 0.25,
            dependent_fraction: 0.4,
            burst_mean: 2,
            seed: 42,
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let p = DemandProfile::uniform(4, 8, 0.2);
        assert_eq!(p.assign(64, 7), p.assign(64, 7));
        assert_ne!(p.assign(64, 7), p.assign(64, 8), "different seeds differ");
    }

    #[test]
    fn assignment_respects_ranges() {
        let p = DemandProfile {
            components: vec![
                DemandComponent::new(0.5, 1, 4),
                DemandComponent::new(0.5, 17, 32),
            ],
            near_fraction: 0.2,
            near_window: 4,
        };
        let d = p.assign(2048, 3);
        assert!(d
            .iter()
            .all(|&x| (1..=4).contains(&x) || (17..=32).contains(&x)));
        let low = d.iter().filter(|&&x| x <= 4).count() as f64 / 2048.0;
        assert!(
            (low - 0.5).abs() < 0.08,
            "mixture weights honoured, got {low}"
        );
    }

    #[test]
    fn same_program_same_demand_map_across_cores() {
        let spec = pooled_spec(vec![DemandComponent::new(1.0, 2, 30)], 0.2);
        let geo = Geometry::new(64, 64, 4);
        let s0 = spec.stream(geo, 0);
        let s1 = spec.stream(geo, 1);
        for set in 0..64 {
            assert_eq!(s0.demand_of(set), s1.demand_of(set));
        }
    }

    #[test]
    fn cores_have_disjoint_address_spaces() {
        let spec = pooled_spec(vec![DemandComponent::new(1.0, 2, 8)], 0.2);
        let geo = Geometry::new(64, 64, 4);
        let mut s0 = spec.stream(geo, 0);
        let mut s1 = spec.stream(geo, 1);
        let a0: std::collections::HashSet<u64> = (0..2000)
            .map(|_| s0.next_op().access.addr.block(64).0)
            .collect();
        let a1: std::collections::HashSet<u64> = (0..2000)
            .map(|_| s1.next_op().access.addr.block(64).0)
            .collect();
        assert!(a0.is_disjoint(&a1));
    }

    #[test]
    fn pooled_references_stay_in_assigned_set_pools() {
        let spec = pooled_spec(vec![DemandComponent::new(1.0, 3, 3)], 0.0);
        let geo = Geometry::new(64, 16, 4);
        let mut s = spec.stream(geo, 0);
        let mut per_set: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 16];
        for _ in 0..5000 {
            let b = s.next_op().access.addr.block(64);
            per_set[geo.set_index(b)].insert(b.0);
        }
        for (set, blocks) in per_set.iter().enumerate() {
            assert!(
                blocks.len() <= 3,
                "set {set} saw {} distinct blocks, demand is 3",
                blocks.len()
            );
        }
    }

    #[test]
    fn streaming_never_repeats_blocks() {
        let spec = BenchmarkSpec {
            name: "applu-like".into(),
            pattern: Pattern::Streaming,
            gap_mean: 2,
            write_fraction: 0.1,
            dependent_fraction: 0.1,
            burst_mean: 0,
            seed: 1,
        };
        let mut s = spec.stream(Geometry::new(64, 16, 4), 0);
        let blocks: Vec<u64> = (0..1000)
            .map(|_| s.next_op().access.addr.block(64).0)
            .collect();
        let uniq: std::collections::HashSet<_> = blocks.iter().collect();
        assert_eq!(uniq.len(), blocks.len());
    }

    #[test]
    fn gap_mean_roughly_respected() {
        let spec = pooled_spec(vec![DemandComponent::new(1.0, 2, 8)], 0.2);
        let mut s = spec.stream(Geometry::new(64, 16, 4), 0);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| s.next_op().gap as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "gap mean ≈ 3, got {mean}");
    }

    #[test]
    fn write_fraction_roughly_respected() {
        let spec = pooled_spec(vec![DemandComponent::new(1.0, 2, 8)], 0.2);
        let mut s = spec.stream(Geometry::new(64, 16, 4), 0);
        let n = 20_000;
        let writes = (0..n)
            .filter(|_| s.next_op().access.kind.is_write())
            .count();
        let frac = writes as f64 / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "write fraction ≈ 0.25, got {frac}"
        );
    }

    #[test]
    fn phase_schedule_cycles() {
        let spec = BenchmarkSpec {
            name: "phased".into(),
            dependent_fraction: 0.0,
            burst_mean: 0,
            pattern: Pattern::Pooled {
                phases: vec![
                    Phase {
                        fraction: 0.5,
                        profile: DemandProfile::uniform(2, 2, 0.0),
                    },
                    Phase {
                        fraction: 0.5,
                        profile: DemandProfile::uniform(20, 20, 0.0),
                    },
                ],
                cycle_accesses: 1000,
            },
            gap_mean: 0,
            write_fraction: 0.0,
            seed: 9,
        };
        let mut s = spec.stream(Geometry::new(64, 8, 4), 0);
        let mut demands = Vec::new();
        for i in 0..2000 {
            s.next_op();
            if i % 250 == 100 {
                demands.push(s.demand_of(0));
            }
        }
        assert_eq!(
            demands,
            vec![2, 2, 20, 20, 2, 2, 20, 20],
            "phases alternate and repeat"
        );
    }

    #[test]
    fn guided_cdf_lookup_matches_partition_point() {
        // Mixed demands (including a degenerate all-equal prefix from
        // lo=hi components) across several geometries.
        for (sets, seed) in [(16u64, 1u64), (64, 2), (1024, 3)] {
            let spec = pooled_spec(
                vec![
                    DemandComponent::new(0.4, 1, 1),
                    DemandComponent::new(0.6, 2, 30),
                ],
                0.2,
            );
            let s = spec.stream(Geometry::new(64, sets, 4), seed as usize);
            let total = *s.set_cdf.last().unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..5000 {
                let x = rng.gen::<f64>() * total;
                assert_eq!(
                    s.locate_cdf(x),
                    s.set_cdf.partition_point(|&c| c <= x),
                    "x={x}"
                );
            }
            // Boundary values: exactly on cumulative steps and the total.
            for &x in s.set_cdf.iter().chain([&total]) {
                assert_eq!(s.locate_cdf(x), s.set_cdf.partition_point(|&c| c <= x));
            }
        }
    }

    #[test]
    fn incremental_phase_tracking_matches_phase_at() {
        let spec = BenchmarkSpec {
            name: "phased".into(),
            dependent_fraction: 0.1,
            burst_mean: 1,
            pattern: Pattern::Pooled {
                phases: vec![
                    Phase {
                        fraction: 0.3,
                        profile: DemandProfile::uniform(2, 4, 0.1),
                    },
                    Phase {
                        fraction: 0.5,
                        profile: DemandProfile::uniform(10, 20, 0.3),
                    },
                    Phase {
                        fraction: 0.2,
                        profile: DemandProfile::uniform(1, 2, 0.0),
                    },
                ],
                cycle_accesses: 777,
            },
            gap_mean: 1,
            write_fraction: 0.2,
            seed: 5,
        };
        let mut s = spec.stream(Geometry::new(64, 16, 4), 0);
        for _ in 0..3000 {
            s.next_op();
            // After an op for access index `access_count - 1`, the live
            // phase must be what the full lookup computes for it.
            assert_eq!(s.current_phase, s.phase_at(s.access_count - 1));
            assert_eq!(s.cycle_pos, s.access_count % 777, "position mirror");
        }
    }

    #[test]
    fn demand_scale_shift_persists_across_internal_phase_cycling() {
        use sim_mem::ShiftDirective;
        // Two internal phases with known constant demands.
        let spec = BenchmarkSpec {
            name: "phased".into(),
            dependent_fraction: 0.0,
            burst_mean: 0,
            pattern: Pattern::Pooled {
                phases: vec![
                    Phase {
                        fraction: 0.5,
                        profile: DemandProfile::uniform(4, 4, 0.0),
                    },
                    Phase {
                        fraction: 0.5,
                        profile: DemandProfile::uniform(20, 20, 0.0),
                    },
                ],
                cycle_accesses: 1000,
            },
            gap_mean: 0,
            write_fraction: 0.0,
            seed: 9,
        };
        let mut s = spec.stream(Geometry::new(64, 8, 4), 0);
        assert_eq!(s.demand_of(0), 4);
        assert!(s.apply_shift(&ShiftDirective::DemandScale { percent: 200 }));
        assert_eq!(s.demand_of(0), 8, "current phase rescaled in place");
        // Drive through the second internal phase and back into the
        // first: both re-derive from the mutated profiles.
        let mut seen = Vec::new();
        for i in 0..2000 {
            s.next_op();
            if i % 500 == 300 {
                seen.push(s.demand_of(0));
            }
        }
        assert_eq!(seen, vec![8, 40, 8, 40], "doubled demands persist");
    }

    #[test]
    fn near_fraction_and_streaming_shifts_apply() {
        use sim_mem::ShiftDirective;
        let spec = pooled_spec(vec![DemandComponent::new(1.0, 3, 3)], 0.5);
        let mut s = spec.stream(Geometry::new(64, 16, 4), 0);
        assert!(s.apply_shift(&ShiftDirective::NearFraction { percent: 10 }));
        let Pattern::Pooled { phases, .. } = &s.spec().pattern else {
            panic!("still pooled")
        };
        assert!((phases[0].profile.near_fraction - 0.1).abs() < 1e-12);

        // Switching to streaming: fresh blocks only from here on.
        for _ in 0..100 {
            s.next_op();
        }
        assert!(s.apply_shift(&ShiftDirective::Streaming));
        let mut blocks: Vec<u64> = (0..500)
            .map(|_| s.next_op().access.addr.block(64).0)
            .collect();
        // Spatial-locality bursts repeat a block back-to-back; collapse
        // those runs. The very first run can still be the pre-shift
        // pooled burst draining out, so it is excluded too — beyond
        // that nothing recurs.
        blocks.dedup();
        let streamed = &blocks[1..];
        let uniq: std::collections::HashSet<_> = streamed.iter().collect();
        assert_eq!(uniq.len(), streamed.len(), "no block revisited");
        // Demand directives no longer apply to a streaming pattern.
        assert!(!s.apply_shift(&ShiftDirective::DemandScale { percent: 200 }));
    }

    #[test]
    fn profile_shift_adopts_the_target_demand_map_and_keeps_the_label() {
        use crate::spec::Benchmark;
        use sim_mem::ShiftDirective;
        let geo = Geometry::new(64, 1024, 16);
        let mut shifted = Benchmark::Gzip.spec().stream(geo, 1);
        assert!(shifted.apply_shift(&ShiftDirective::Profile { name: "mcf".into() }));
        assert_eq!(shifted.label(), "gzip", "label survives the swap");
        let native = Benchmark::Mcf.spec().stream(geo, 1);
        for set in (0..1024).step_by(97) {
            assert_eq!(
                shifted.demand_of(set),
                native.demand_of(set),
                "set {set}: demand map is mcf's"
            );
        }
        assert!(!shifted.apply_shift(&ShiftDirective::Profile {
            name: "quake".into()
        }));
    }

    #[test]
    fn shifted_streams_clone_faithfully() {
        use sim_mem::ShiftDirective;
        let spec = pooled_spec(vec![DemandComponent::new(1.0, 2, 30)], 0.2);
        let mut s = spec.stream(Geometry::new(64, 64, 4), 0);
        for _ in 0..500 {
            s.next_op();
        }
        s.apply_shift(&ShiftDirective::DemandScale { percent: 300 });
        let mut cloned = s.clone_dyn().expect("synthetic streams clone");
        for _ in 0..500 {
            assert_eq!(s.next_op(), cloned.next_op());
        }
    }

    #[test]
    fn mean_demand_matches_mixture() {
        let spec = pooled_spec(
            vec![
                DemandComponent::new(0.5, 1, 3),
                DemandComponent::new(0.5, 21, 23),
            ],
            0.2,
        );
        assert!((spec.mean_demand() - 12.0).abs() < 1e-9);
    }
}
