//! Workload combination classes — paper Tables 7 and 8.
//!
//! Six classes of quad-core workload combinations: C1/C2 are stress
//! tests (four identical applications, capacity sharing only), C3–C6 mix
//! class-A applications with classes B/C/D. 21 combinations in total.

use crate::spec::Benchmark;
use serde::{Deserialize, Serialize};

/// The six combination classes of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ComboClass {
    C1,
    C2,
    C3,
    C4,
    C5,
    C6,
}

impl ComboClass {
    /// All six classes in paper order.
    pub const ALL: [ComboClass; 6] = [
        ComboClass::C1,
        ComboClass::C2,
        ComboClass::C3,
        ComboClass::C4,
        ComboClass::C5,
        ComboClass::C6,
    ];

    /// Display name ("C1" … "C6").
    pub fn name(self) -> &'static str {
        match self {
            ComboClass::C1 => "C1",
            ComboClass::C2 => "C2",
            ComboClass::C3 => "C3",
            ComboClass::C4 => "C4",
            ComboClass::C5 => "C5",
            ComboClass::C6 => "C6",
        }
    }

    /// Parse a class name ("C1".."C6", case-insensitive).
    pub fn from_name(name: &str) -> Option<ComboClass> {
        ComboClass::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }

    /// Table 7 description.
    pub fn description(self) -> &'static str {
        match self {
            ComboClass::C1 => "4 identical class-A applications (stress test, no data sharing)",
            ComboClass::C2 => "4 identical class-C applications (stress test, no data sharing)",
            ComboClass::C3 => "2 class-A + 2 class-C applications",
            ComboClass::C4 => "2 class-A + 1 class-B + 1 class-C application",
            ComboClass::C5 => "2 class-A + 2 class-D applications",
            ComboClass::C6 => "2 class-A + 1 class-B + 1 class-D application",
        }
    }
}

impl std::str::FromStr for ComboClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ComboClass::from_name(s)
            .ok_or_else(|| format!("unknown combination class `{s}` (expected C1..C6)"))
    }
}

/// One quad-core workload combination (a row of Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Combo {
    /// The class this combination belongs to.
    pub class: ComboClass,
    /// The four co-scheduled benchmarks (core 0..3).
    pub apps: [Benchmark; 4],
}

impl Combo {
    /// A compact label like "ammp+parser+bzip2+mcf".
    pub fn label(&self) -> String {
        self.apps
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// The full Table 8: 21 combinations in 6 classes.
pub fn all_combos() -> Vec<Combo> {
    use Benchmark::*;
    let c = |class, a, b, c_, d| Combo {
        class,
        apps: [a, b, c_, d],
    };
    vec![
        // C1: stress tests over class A.
        c(ComboClass::C1, Ammp, Ammp, Ammp, Ammp),
        c(ComboClass::C1, Parser, Parser, Parser, Parser),
        c(ComboClass::C1, Vortex, Vortex, Vortex, Vortex),
        // C2: stress tests over class C.
        c(ComboClass::C2, Vpr, Vpr, Vpr, Vpr),
        c(ComboClass::C2, Bzip2, Bzip2, Bzip2, Bzip2),
        c(ComboClass::C2, Mcf, Mcf, Mcf, Mcf),
        c(ComboClass::C2, Art, Art, Art, Art),
        // C3: 2×A + 2×C.
        c(ComboClass::C3, Ammp, Parser, Bzip2, Mcf),
        c(ComboClass::C3, Parser, Vortex, Mcf, Art),
        c(ComboClass::C3, Vortex, Ammp, Art, Vpr),
        // C4: 2×A + B + C.
        c(ComboClass::C4, Ammp, Parser, Apsi, Bzip2),
        c(ComboClass::C4, Parser, Vortex, Gcc, Mcf),
        c(ComboClass::C4, Vortex, Ammp, Apsi, Art),
        c(ComboClass::C4, Ammp, Parser, Gcc, Vpr),
        // C5: 2×A + 2×D.
        c(ComboClass::C5, Ammp, Parser, Swim, Mesa),
        c(ComboClass::C5, Parser, Vortex, Mesa, Gzip),
        c(ComboClass::C5, Vortex, Ammp, Swim, Gzip),
        // C6: 2×A + B + D.
        c(ComboClass::C6, Vortex, Ammp, Apsi, Gzip),
        c(ComboClass::C6, Parser, Vortex, Gcc, Mesa),
        c(ComboClass::C6, Ammp, Parser, Apsi, Swim),
        c(ComboClass::C6, Vortex, Ammp, Gcc, Mesa),
    ]
}

/// The combinations belonging to one class.
pub fn combos_in_class(class: ComboClass) -> Vec<Combo> {
    all_combos()
        .into_iter()
        .filter(|c| c.class == class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppClass;

    #[test]
    fn twenty_one_combos_total() {
        assert_eq!(all_combos().len(), 21);
    }

    #[test]
    fn class_sizes_match_table8() {
        let sizes: Vec<usize> = ComboClass::ALL
            .iter()
            .map(|&c| combos_in_class(c).len())
            .collect();
        assert_eq!(sizes, vec![3, 4, 3, 4, 3, 4]);
    }

    #[test]
    fn stress_tests_are_homogeneous() {
        for combo in combos_in_class(ComboClass::C1)
            .iter()
            .chain(&combos_in_class(ComboClass::C2))
        {
            assert!(
                combo.apps.iter().all(|a| *a == combo.apps[0]),
                "{}",
                combo.label()
            );
        }
        for combo in combos_in_class(ComboClass::C1) {
            assert_eq!(combo.apps[0].class(), AppClass::A);
        }
        for combo in combos_in_class(ComboClass::C2) {
            assert_eq!(combo.apps[0].class(), AppClass::C);
        }
    }

    #[test]
    fn mixed_classes_match_table7_recipes() {
        let count = |combo: &Combo, class: AppClass| {
            combo.apps.iter().filter(|a| a.class() == class).count()
        };
        for combo in combos_in_class(ComboClass::C3) {
            assert_eq!(count(&combo, AppClass::A), 2, "{}", combo.label());
            assert_eq!(count(&combo, AppClass::C), 2, "{}", combo.label());
        }
        for combo in combos_in_class(ComboClass::C4) {
            assert_eq!(count(&combo, AppClass::A), 2);
            assert_eq!(count(&combo, AppClass::B), 1);
            assert_eq!(count(&combo, AppClass::C), 1);
        }
        for combo in combos_in_class(ComboClass::C5) {
            assert_eq!(count(&combo, AppClass::A), 2);
            assert_eq!(count(&combo, AppClass::D), 2);
        }
        for combo in combos_in_class(ComboClass::C6) {
            assert_eq!(count(&combo, AppClass::A), 2);
            assert_eq!(count(&combo, AppClass::B), 1);
            assert_eq!(count(&combo, AppClass::D), 1);
        }
    }

    #[test]
    fn mixed_combos_use_two_distinct_class_a_apps() {
        // Table 7: "(2 *different* applications from class A)".
        for class in [
            ComboClass::C3,
            ComboClass::C4,
            ComboClass::C5,
            ComboClass::C6,
        ] {
            for combo in combos_in_class(class) {
                let a_apps: Vec<_> = combo
                    .apps
                    .iter()
                    .filter(|a| a.class() == AppClass::A)
                    .collect();
                assert_ne!(a_apps[0], a_apps[1], "{}", combo.label());
            }
        }
    }

    #[test]
    fn class_names_parse_back() {
        for class in ComboClass::ALL {
            assert_eq!(class.name().parse::<ComboClass>().unwrap(), class);
            assert_eq!(
                class.name().to_lowercase().parse::<ComboClass>().unwrap(),
                class
            );
        }
        assert!("C7".parse::<ComboClass>().is_err());
        assert!("".parse::<ComboClass>().is_err());
    }

    #[test]
    fn labels_are_readable() {
        let combo = all_combos()[7];
        assert_eq!(combo.label(), "ammp+parser+bzip2+mcf");
    }

    #[test]
    fn every_evaluation_benchmark_appears() {
        let used: std::collections::HashSet<Benchmark> =
            all_combos().iter().flat_map(|c| c.apps).collect();
        assert_eq!(
            used.len(),
            12,
            "all 12 evaluation benchmarks used (applu excluded)"
        );
        assert!(!used.contains(&Benchmark::Applu));
    }
}
