//! Figures 9–11: the five-scheme comparison (throughput, average
//! weighted speedup, fair speedup) over the Table 8 workload classes.
//!
//! Prints the reproduced per-class tables at a reduced budget (the full
//! run is `cargo run --release --example scheme_comparison`), then
//! benchmarks one (combo, scheme) simulation as the timing unit.

use criterion::{criterion_group, criterion_main, Criterion};
use snug_core::SchemeSpec;
use snug_experiments::{figure_table, run_all, run_scheme, summarize, CompareConfig, Figure};
use snug_workloads::{all_combos, ComboClass};

fn print_reproduction() {
    // One combo per class at the quick budget keeps this under a minute.
    let cfg = CompareConfig::quick();
    let combos: Vec<_> = ComboClass::ALL
        .iter()
        .map(|&class| all_combos().into_iter().find(|c| c.class == class).unwrap())
        .collect();
    let results = run_all(&combos, &cfg, 0);
    for fig in [Figure::Throughput, Figure::Aws, Figure::FairSpeedup] {
        let summary = summarize(&results, fig);
        println!("\n{}", figure_table(&summary, fig).to_markdown());
    }
    println!("(smoke subset: 1 combo/class at the quick budget; see EXPERIMENTS.md for the full 21-combo run)");
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut cfg = CompareConfig::quick();
    cfg.plan = snug_experiments::RunPlan::fixed(30_000, 150_000);
    let combo = all_combos()[0];
    let mut g = c.benchmark_group("fig9_10_11");
    g.sample_size(10);
    for (name, spec) in [
        ("l2p", SchemeSpec::L2p),
        ("snug", SchemeSpec::Snug(cfg.snug)),
        ("dsr", SchemeSpec::Dsr(cfg.dsr)),
        (
            "cc100",
            SchemeSpec::Cc {
                spill_probability: 1.0,
            },
        ),
    ] {
        g.bench_function(format!("simulate_c1_{name}"), |b| {
            b.iter(|| run_scheme(&combo, &spec, &cfg));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
