//! Kernel throughput trajectory: how fast the simulator simulates.
//!
//! Times one (combo, scheme) simulation for a representative combo of
//! three workload classes under the private baseline and SNUG at the
//! `--quick` budget, and reports simulated cycles/s and retired
//! instructions/s per wall-clock second. The numbers live in the
//! committed `BENCH_kernel.json` at the repository root so the
//! throughput trajectory is tracked in CI:
//!
//! ```text
//! cargo bench -p snug-bench --bench kernel_throughput            # measure + print
//! cargo bench -p snug-bench --bench kernel_throughput -- --emit  # regenerate BENCH_kernel.json
//! cargo bench -p snug-bench --bench kernel_throughput -- --check # CI gate
//! ```
//!
//! `--check` fails when the committed file is missing, when its
//! fingerprint no longer matches the measurement definition (budget,
//! combos, schemes or scheme parameters changed without regenerating),
//! when the deterministic work counts drifted (the same definition now
//! simulates different cycles/instructions — a behaviour change that
//! must be re-baselined deliberately), or when freshly measured ops/s
//! fall below the committed trajectory: any single entry by more than
//! [`ENTRY_TOLERANCE`], or the geomean across all entries by more than
//! [`GEOMEAN_TOLERANCE`]. The geomean floor is the primary gate — noise
//! on one (combo, scheme) point averages out across the fifteen-entry
//! grid, so it can be held much tighter than any per-entry bound. A
//! `--test` run (what `cargo test --benches` passes) takes a single
//! sample and never touches the file, so it cannot flake on machine
//! speed.

use snug_core::SchemeSpec;
use snug_experiments::run_scheme;
use snug_harness::hash::content_key;
use snug_harness::json::{parse, Value};
use snug_harness::BudgetPreset;
use snug_workloads::{all_combos, ComboClass};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag of `BENCH_kernel.json`.
const SCHEMA: &str = "snug-bench/v1";
/// Budget preset the trajectory is defined over.
const BUDGET: BudgetPreset = BudgetPreset::Quick;
/// Allowed fractional ops/s drop on a single entry before `--check`
/// fails. Loose: a lone (combo, scheme) point is exposed to scheduler
/// noise even best-of-[`SAMPLES`], so this only catches a scheme whose
/// hot path fell off a cliff.
const ENTRY_TOLERANCE: f64 = 0.25;
/// Allowed fractional drop of the geomean ops/s across all entries.
/// Tight: per-point noise averages out over the full grid, so the
/// geomean is the number the trajectory is really gated on.
const GEOMEAN_TOLERANCE: f64 = 0.10;
/// Timed samples per point (best-of, to shed scheduler noise).
const SAMPLES: usize = 3;

/// One measured (combo, scheme) point of the trajectory.
struct BenchEntry {
    combo: String,
    scheme: String,
    /// Simulated cycles per run (warm-up + measured window) — a pure
    /// function of the definition, committed as a drift tripwire.
    sim_cycles: u64,
    /// Instructions retired over the measured window — deterministic
    /// for the same reason.
    instructions: u64,
    /// Simulated cycles per wall-clock second (best sample).
    cycles_per_sec: f64,
    /// Retired instructions per wall-clock second (best sample).
    ops_per_sec: f64,
}

impl BenchEntry {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("combo", Value::str(&self.combo)),
            ("scheme", Value::str(&self.scheme)),
            ("sim_cycles", Value::num(self.sim_cycles as f64)),
            ("instructions", Value::num(self.instructions as f64)),
            ("cycles_per_sec", Value::num(self.cycles_per_sec)),
            ("ops_per_sec", Value::num(self.ops_per_sec)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let num = |name: &str| -> Result<f64, String> {
            v.get(name)
                .and_then(|x| x.as_num())
                .map_err(|e| format!("entry field `{name}`: {e}"))
        };
        let text = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(|x| x.as_str().map(str::to_string))
                .map_err(|e| format!("entry field `{name}`: {e}"))
        };
        Ok(BenchEntry {
            combo: text("combo")?,
            scheme: text("scheme")?,
            sim_cycles: num("sim_cycles")? as u64,
            instructions: num("instructions")? as u64,
            cycles_per_sec: num("cycles_per_sec")?,
            ops_per_sec: num("ops_per_sec")?,
        })
    }
}

/// The measurement definition: representative combos (first of three
/// spread-out classes) × all five paper schemes at the quick budget.
/// CC runs at 100% spill probability — the point of the §4.1 sweep that
/// exercises the spill/retrieve machinery hardest.
fn definition() -> (snug_experiments::CompareConfig, Vec<(String, SchemeSpec)>) {
    let cfg = BUDGET.compare_config();
    let combos = [ComboClass::C1, ComboClass::C3, ComboClass::C5].map(|class| {
        all_combos()
            .into_iter()
            .find(|c| c.class == class)
            .expect("every class has combos")
    });
    let mut points = Vec::new();
    for combo in &combos {
        for spec in [
            SchemeSpec::L2p,
            SchemeSpec::L2s,
            SchemeSpec::Cc {
                spill_probability: 1.0,
            },
            SchemeSpec::Dsr(cfg.dsr),
            SchemeSpec::Snug(cfg.snug),
        ] {
            points.push((combo.label(), spec));
        }
    }
    (cfg, points)
}

/// Geometric mean of ops/s across entries — the single scalar the
/// trajectory is tracked by.
fn geomean_ops(entries: &[BenchEntry]) -> f64 {
    let log_sum: f64 = entries.iter().map(|e| e.ops_per_sec.ln()).sum();
    (log_sum / entries.len().max(1) as f64).exp()
}

/// Fingerprint of everything that defines the trajectory: schema,
/// budget, the full compare configuration (scheme parameters included)
/// and the measured points. Changing any of it stales the committed
/// file until `--emit` re-baselines.
fn fingerprint(cfg: &snug_experiments::CompareConfig, points: &[(String, SchemeSpec)]) -> String {
    let points_desc: Vec<String> = points
        .iter()
        .map(|(combo, spec)| format!("{combo}/{spec}"))
        .collect();
    content_key(&format!(
        "{SCHEMA}|{}|{cfg:?}|{}",
        BUDGET.label(),
        points_desc.join(",")
    ))
}

/// Measure every point of the definition, best-of-`samples`.
fn measure(samples: usize) -> Vec<BenchEntry> {
    let (cfg, points) = definition();
    let all = all_combos();
    let sim_cycles = cfg.plan.warmup_cycles + cfg.plan.measure_cycles();
    points
        .iter()
        .map(|(combo_label, spec)| {
            let combo = all
                .iter()
                .find(|c| c.label() == *combo_label)
                .expect("definition combos exist");
            let mut best_nanos = u64::MAX;
            let mut instructions = 0u64;
            for _ in 0..samples {
                let started = Instant::now();
                let result = run_scheme(combo, spec, &cfg);
                best_nanos = best_nanos.min(started.elapsed().as_nanos().max(1) as u64);
                instructions = result.cores.iter().map(|c| c.instructions).sum();
            }
            let secs = best_nanos as f64 / 1e9;
            let entry = BenchEntry {
                combo: combo_label.clone(),
                scheme: spec.to_string(),
                sim_cycles,
                instructions,
                cycles_per_sec: sim_cycles as f64 / secs,
                ops_per_sec: instructions as f64 / secs,
            };
            println!(
                "bench kernel_throughput/{:<32} {:>10.2} Mcyc/s {:>10.2} Mops/s",
                format!("{}_{}", entry.scheme.to_lowercase(), entry.combo),
                entry.cycles_per_sec / 1e6,
                entry.ops_per_sec / 1e6,
            );
            entry
        })
        .collect()
}

fn render(entries: &[BenchEntry]) -> String {
    let (cfg, points) = definition();
    let doc = Value::obj(vec![
        ("schema", Value::str(SCHEMA)),
        ("budget", Value::str(BUDGET.label())),
        ("fingerprint", Value::str(fingerprint(&cfg, &points))),
        // Informational; `--check` recomputes the geomean from the
        // entries rather than trusting this field.
        ("geomean_ops_per_sec", Value::num(geomean_ops(entries))),
        (
            "entries",
            Value::Arr(entries.iter().map(BenchEntry::to_json).collect()),
        ),
    ]);
    format!("{}\n", doc.render())
}

fn load(path: &Path) -> Result<(String, Vec<BenchEntry>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "{} is missing or unreadable ({e}) — run `cargo bench -p snug-bench --bench \
             kernel_throughput -- --emit` and commit the result",
            path.display()
        )
    })?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    if schema != SCHEMA {
        return Err(format!(
            "{}: schema `{schema}` (expected `{SCHEMA}`)",
            path.display()
        ));
    }
    let fp = doc
        .get("fingerprint")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_arr().map(<[Value]>::to_vec))
        .map_err(|e| format!("{}: {e}", path.display()))?
        .iter()
        .map(BenchEntry::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((fp, entries))
}

fn check(path: &Path) -> Result<(), String> {
    let (committed_fp, committed) = load(path)?;
    let (cfg, points) = definition();
    let current_fp = fingerprint(&cfg, &points);
    if committed_fp != current_fp {
        return Err(format!(
            "{} is stale: fingerprint {committed_fp} no longer matches the measurement \
             definition ({current_fp}) — regenerate with `--emit` and commit the result",
            path.display()
        ));
    }
    let fresh = measure(SAMPLES);
    for want in &committed {
        let got = fresh
            .iter()
            .find(|e| e.combo == want.combo && e.scheme == want.scheme)
            .ok_or_else(|| {
                format!(
                    "committed entry {} [{}] is not in the measurement definition — \
                     regenerate with `--emit`",
                    want.combo, want.scheme
                )
            })?;
        if got.sim_cycles != want.sim_cycles || got.instructions != want.instructions {
            return Err(format!(
                "{} [{}]: deterministic work drifted (committed {} cycles / {} instructions, \
                 measured {} / {}) — a behaviour change; re-baseline with `--emit` if intended",
                want.combo,
                want.scheme,
                want.sim_cycles,
                want.instructions,
                got.sim_cycles,
                got.instructions
            ));
        }
        let floor = want.ops_per_sec * (1.0 - ENTRY_TOLERANCE);
        if got.ops_per_sec < floor {
            return Err(format!(
                "{} [{}]: throughput regression — measured {:.2} Mops/s is more than \
                 {:.0}% below the committed {:.2} Mops/s",
                want.combo,
                want.scheme,
                got.ops_per_sec / 1e6,
                ENTRY_TOLERANCE * 100.0,
                want.ops_per_sec / 1e6
            ));
        }
        println!(
            "check kernel_throughput/{:<32} committed {:>8.2} Mops/s, measured {:>8.2} Mops/s",
            format!("{}_{}", want.scheme.to_lowercase(), want.combo),
            want.ops_per_sec / 1e6,
            got.ops_per_sec / 1e6,
        );
    }
    let committed_geo = geomean_ops(&committed);
    let fresh_geo = geomean_ops(&fresh);
    if fresh_geo < committed_geo * (1.0 - GEOMEAN_TOLERANCE) {
        return Err(format!(
            "geomean throughput regression — measured {:.2} Mops/s is more than {:.0}% below \
             the committed {:.2} Mops/s floor",
            fresh_geo / 1e6,
            GEOMEAN_TOLERANCE * 100.0,
            committed_geo / 1e6
        ));
    }
    println!(
        "BENCH_kernel trajectory holds: {} entries (each within {:.0}% of committed ops/s), \
         geomean {:.2} Mops/s vs committed {:.2} Mops/s (floor -{:.0}%)",
        committed.len(),
        ENTRY_TOLERANCE * 100.0,
        fresh_geo / 1e6,
        committed_geo / 1e6,
        GEOMEAN_TOLERANCE * 100.0
    );
    Ok(())
}

fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernel.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `cargo test --benches` invokes bench binaries with `--test`: take
    // one sample and never touch or gate on the committed file.
    if args.iter().any(|a| a == "--test") {
        measure(1);
        return;
    }
    let path = default_path();
    let outcome = if args.iter().any(|a| a == "--emit") {
        let entries = measure(SAMPLES);
        std::fs::write(&path, render(&entries))
            .map_err(|e| format!("writing {}: {e}", path.display()))
            .map(|()| {
                println!(
                    "wrote {} ({} entries, budget {}, geomean {:.2} Mops/s)",
                    path.display(),
                    entries.len(),
                    BUDGET.label(),
                    geomean_ops(&entries) / 1e6
                );
            })
    } else if args.iter().any(|a| a == "--check") {
        check(&path)
    } else {
        measure(SAMPLES);
        Ok(())
    };
    if let Err(msg) = outcome {
        eprintln!("kernel_throughput: {msg}");
        std::process::exit(1);
    }
}
