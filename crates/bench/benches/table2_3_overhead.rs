//! Tables 2–3: SNUG storage-overhead analysis (Formula 6).
//!
//! Prints the reproduced table rows (paper: 3.9 % / 5.8 % / 2.1 % /
//! 3.1 %), then benchmarks the arithmetic (trivially fast — included so
//! every table has a regenerating bench target).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snug_core::{table3, OverheadParams};

fn print_reproduction() {
    let p = OverheadParams::paper();
    println!("\n=== Table 2 / §3.4: baseline storage overhead ===");
    println!(
        "tag bits = {}, shadow set = {} bits, L2 set = {} bits → overhead {:.2} % (paper: 3.9 %)",
        p.tag_bits(),
        p.shadow_set_bits(),
        p.l2_set_bits(),
        p.storage_overhead() * 100.0
    );
    println!("\n=== Table 3: address width × line size ===");
    for (addr, block, o) in table3() {
        println!(
            "{block:>4} B lines, {addr}-bit addresses: {:.1} %",
            o * 100.0
        );
    }
    println!("paper Table 3: 64B → 3.9/5.8 %, 128B → 2.1/3.1 %\n");
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    c.bench_function("table2_3/storage_overhead", |b| {
        b.iter(|| black_box(OverheadParams::paper()).storage_overhead());
    });
    c.bench_function("table2_3/full_table3", |b| {
        b.iter(table3);
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
