//! Ablation benches for the design choices the reproduction leaves open:
//!
//! * E9  — index-bit flipping on/off (the §3.2 mechanism) on the C1
//!   stress class, where same-index grouping cannot work;
//! * E10 — sampling-period lengths (§3.4's "5 M + 100 M works well");
//! * E11 — monitor counter width k and threshold p (§3.1.2);
//! * E12 — the CC spill-probability sweep behind CC(Best) (§4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use snug_core::SchemeSpec;
use snug_experiments::{run_scheme, CompareConfig};
use snug_workloads::all_combos;

fn print_reproduction() {
    // Evaluation-scale budgets: the 1 MB slices need hundreds of
    // thousands of cycles before they even start evicting, so the quick
    // budget would show flat 1.000 everywhere.
    // Full evaluation window: the cooperative effects need several
    // sampling periods to develop.
    let cfg = CompareConfig::default_eval();
    let c1 = all_combos()[0]; // 4 × ammp
    let base = run_scheme(&c1, &SchemeSpec::L2p, &cfg).throughput();

    println!("\n=== E9: index-bit flipping ablation (C1 stress, 4×ammp) ===");
    for flipping in [true, false] {
        let mut s = cfg.snug;
        s.flipping = flipping;
        let r = run_scheme(&c1, &SchemeSpec::Snug(s), &cfg);
        println!(
            "flipping {:<5} → normalised throughput {:.3}",
            flipping,
            r.throughput() / base
        );
    }

    println!("\n=== E10: sampling-period lengths (C1) ===");
    for (s1, s2) in [
        (50_000u64, 450_000u64),
        (150_000, 1_350_000),
        (300_000, 2_700_000),
    ] {
        let mut s = cfg.snug;
        s.stage1_cycles = s1;
        s.stage2_cycles = s2;
        let r = run_scheme(&c1, &SchemeSpec::Snug(s), &cfg);
        println!(
            "stage I {s1:>7} + stage II {s2:>7} → {:.3}",
            r.throughput() / base
        );
    }

    println!("\n=== E11: counter width k / threshold p (C1) ===");
    for (k, p) in [(2u32, 4u16), (4, 8), (6, 16)] {
        let mut s = cfg.snug;
        s.counter_bits = k;
        s.p = p;
        let r = run_scheme(&c1, &SchemeSpec::Snug(s), &cfg);
        println!("k = {k}, p = {p:>2} → {:.3}", r.throughput() / base);
    }

    println!("\n=== E12: CC spill-probability sweep (C1) ===");
    for &p in &SchemeSpec::CC_SPILL_SWEEP {
        let r = run_scheme(
            &c1,
            &SchemeSpec::Cc {
                spill_probability: p,
            },
            &cfg,
        );
        println!(
            "p_spill {:>3.0} % → {:.3}",
            p * 100.0,
            r.throughput() / base
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut cfg = CompareConfig::quick();
    cfg.plan = snug_experiments::RunPlan::fixed(30_000, 150_000);
    let combo = all_combos()[0];
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let mut flip_off = cfg.snug;
    flip_off.flipping = false;
    g.bench_function("snug_flipping_on", |b| {
        b.iter(|| run_scheme(&combo, &SchemeSpec::Snug(cfg.snug), &cfg))
    });
    g.bench_function("snug_flipping_off", |b| {
        b.iter(|| run_scheme(&combo, &SchemeSpec::Snug(flip_off), &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
