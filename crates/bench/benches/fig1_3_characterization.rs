//! Figures 1–3: distribution of set-level capacity demand for ammp,
//! vortex and applu.
//!
//! Prints the reproduced per-benchmark summary (the stacked-series data
//! is written by `examples/characterize_demand.rs`), then benchmarks the
//! characterisation pipeline itself (profiler + interval bookkeeping).

use criterion::{criterion_group, criterion_main, Criterion};
use snug_experiments::{characterize, CharacterizeConfig};
use snug_workloads::Benchmark;

fn print_reproduction() {
    let cfg = CharacterizeConfig::scaled(20, 50_000);
    println!("\n=== Figures 1-3: set-level capacity demand (scaled plan: 20 x 50K) ===");
    println!(
        "{:<8} {:>12} {:>16} {:>8}",
        "bench", "1-4 blocks", ">16 blocks", "spread"
    );
    for b in [Benchmark::Ammp, Benchmark::Vortex, Benchmark::Applu] {
        let c = characterize(b, &cfg);
        println!(
            "{:<8} {:>11.1}% {:>15.1}% {:>8.2}",
            c.benchmark,
            c.mean_low_demand() * 100.0,
            c.mean_above_baseline(16) * 100.0,
            c.mean_spread()
        );
    }
    println!("paper: ammp ~40% low-demand w/ strong non-uniformity; applu ~100% low-demand\n");
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("fig1_3");
    g.sample_size(10);
    for b in [Benchmark::Ammp, Benchmark::Applu] {
        g.bench_function(format!("characterize_{}", b.name()), |bench| {
            bench.iter(|| characterize(b, &CharacterizeConfig::scaled(4, 20_000)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
