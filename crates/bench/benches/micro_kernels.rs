//! Microbenchmarks for the kernel hot-path primitives.
//!
//! The end-to-end trajectory lives in `kernel_throughput`; this bench
//! isolates the three per-op building blocks it is made of, so a
//! regression can be attributed without re-profiling the whole session:
//!
//! * `lru/*` — the packed nibble-permutation [`LruOrder`] (`touch`,
//!   `position`, `demote`) at the 16-way L2 and 4-way L1 widths;
//! * `set/*` — the struct-of-arrays tag probe and single-probe hit path
//!   of [`SetAssocCache`];
//! * `stream/*` — [`SyntheticStream::next_op`], the synthetic workload
//!   generator that feeds every retired op.
//!
//! Each closure runs a fixed batch of operations per iteration and
//! reports the mean per batch; divide by `BATCH` for per-op cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_cache::{LruOrder, SetAssocCache};
use sim_mem::{Geometry, OpStream};
use snug_workloads::Benchmark;

/// Operations per timed batch.
const BATCH: usize = 10_000;

/// A tiny deterministic LCG, so the benches measure the primitive and
/// not a generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");
    for ways in [4usize, 16] {
        g.bench_function(format!("touch_{ways}way"), |b| {
            let mut order = LruOrder::new(ways);
            let mut rng = Lcg(7);
            b.iter(|| {
                for _ in 0..BATCH {
                    order.touch(rng.next() as usize % ways);
                }
                black_box(order.lru_way())
            });
        });
        g.bench_function(format!("position_{ways}way"), |b| {
            let mut order = LruOrder::new(ways);
            let mut rng = Lcg(11);
            for _ in 0..ways * 4 {
                order.touch(rng.next() as usize % ways);
            }
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..BATCH {
                    acc += order.position(rng.next() as usize % ways);
                }
                black_box(acc)
            });
        });
        g.bench_function(format!("demote_{ways}way"), |b| {
            let mut order = LruOrder::new(ways);
            let mut rng = Lcg(13);
            b.iter(|| {
                for _ in 0..BATCH {
                    order.demote(rng.next() as usize % ways);
                }
                black_box(order.lru_way())
            });
        });
    }
    g.finish();
}

fn bench_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("set");
    // One 16-way set, fully populated: every probe is a hit somewhere
    // in the tag lane, like the steady-state L2 slice.
    g.bench_function("probe_hit_16way", |b| {
        let geo = Geometry::new(64, 1, 16);
        let mut cache = SetAssocCache::new(geo);
        let blocks: Vec<_> = (0..16u64).map(|t| geo.compose(0, t)).collect();
        for &blk in &blocks {
            cache.access(blk, false);
        }
        let mut rng = Lcg(17);
        b.iter(|| {
            let mut hits = 0usize;
            for _ in 0..BATCH {
                let blk = blocks[rng.next() as usize % blocks.len()];
                hits += usize::from(cache.probe(blk).is_some());
            }
            black_box(hits)
        });
    });
    // The full L1-shaped access path (probe + touch + stats) on a
    // 4-way cache with a resident working set: the per-op hit path.
    g.bench_function("access_hit_l1shape", |b| {
        let geo = Geometry::new(64, 64, 4);
        let mut cache = SetAssocCache::new(geo);
        let blocks: Vec<_> = (0..64u64)
            .flat_map(|s| (0..4u64).map(move |t| geo.compose(s as usize, t)))
            .collect();
        for &blk in &blocks {
            cache.access(blk, false);
        }
        let mut rng = Lcg(19);
        b.iter(|| {
            let mut dist = 0usize;
            for _ in 0..BATCH {
                let blk = blocks[rng.next() as usize % blocks.len()];
                dist += cache.access(blk, false).distance.unwrap_or(0);
            }
            black_box(dist)
        });
    });
    g.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    // ammp: pooled pattern with bursts — the generator's common case.
    g.bench_function("next_op_ammp", |b| {
        let geo = Geometry::new(64, 1024, 16);
        let mut stream = Benchmark::Ammp.spec().stream(geo, 0);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc ^= stream.next_op().access.addr.0;
            }
            black_box(acc)
        });
    });
    g.bench_function("next_op_swim", |b| {
        let geo = Geometry::new(64, 1024, 16);
        let mut stream = Benchmark::Swim.spec().stream(geo, 0);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc ^= stream.next_op().access.addr.0;
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_lru, bench_set, bench_stream);
criterion_main!(benches);
