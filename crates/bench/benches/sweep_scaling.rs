//! Sweep wall-time scaling: what `--jobs N` buys on the `--mid` sweep.
//!
//! Runs the full 21-combo mid-budget sweep into a throwaway store twice
//! — once with one worker, once with a worker per core (at least four,
//! so the committed note is comparable across machines) — and reports
//! the wall times and the parallel speedup. The numbers live in the
//! committed `BENCH_sweep.json` at the repository root, next to
//! `BENCH_kernel.json`:
//!
//! ```text
//! cargo bench -p snug-bench --bench sweep_scaling            # measure + print
//! cargo bench -p snug-bench --bench sweep_scaling -- --emit  # regenerate BENCH_sweep.json
//! cargo bench -p snug-bench --bench sweep_scaling -- --check # CI gate
//! ```
//!
//! Wall time and speedup are machine-dependent — a single-core machine
//! measures a speedup near 1.0, and the committed file records the core
//! count it was emitted on precisely so that is not misread as a
//! regression. `--check` therefore gates only on what is deterministic:
//! the file parses, its fingerprint still matches the measurement
//! definition, and the freshly measured sweeps execute exactly the
//! committed number of unit jobs with both worker counts. The fresh
//! wall times and speedup are printed as the CI wall-time note. A
//! `--test` run (what `cargo test --benches` passes) shrinks the sweep
//! to one class at the quick budget and never touches the file.

use snug_harness::hash::content_key;
use snug_harness::json::{parse, Value};
use snug_harness::{run_sweep, BudgetPreset, ResultStore, SweepSpec};
use snug_workloads::ComboClass;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag of `BENCH_sweep.json`.
const SCHEMA: &str = "snug-sweep-bench/v1";
/// The parallel worker count the note compares against one worker.
fn parallel_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}

fn spec(budget: BudgetPreset, classes: Vec<ComboClass>) -> SweepSpec {
    let mut spec = SweepSpec::full(budget);
    spec.classes = classes;
    spec
}

/// One timed sweep into a fresh throwaway store.
fn timed_sweep(spec: &SweepSpec, jobs: usize) -> (f64, usize) {
    let dir =
        std::env::temp_dir().join(format!("snug-sweep-scaling-{}-j{jobs}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ResultStore::open(&dir).expect("open bench store");
    let started = Instant::now();
    let outcome = run_sweep(spec, &mut store, jobs, |_| {}).expect("bench sweep runs");
    let wall = started.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    (wall, outcome.executed)
}

/// Everything the committed numbers are defined over: schema, the exact
/// sweep configuration, and the two worker counts being compared.
fn fingerprint(spec: &SweepSpec) -> String {
    content_key(&format!(
        "{SCHEMA}|{spec:?}|{:?}|jobs=1-vs-N",
        spec.compare_config()
    ))
}

struct Measurement {
    wall_1: f64,
    wall_n: f64,
    executed: usize,
    jobs_n: usize,
}

fn measure(spec: &SweepSpec) -> Measurement {
    let jobs_n = parallel_jobs();
    let (wall_1, executed_1) = timed_sweep(spec, 1);
    let (wall_n, executed_n) = timed_sweep(spec, jobs_n);
    assert_eq!(
        executed_1, executed_n,
        "both worker counts execute the same plan"
    );
    let m = Measurement {
        wall_1,
        wall_n,
        executed: executed_1,
        jobs_n,
    };
    println!(
        "bench sweep_scaling/{}: {} units | --jobs 1: {:.2} s | --jobs {}: {:.2} s | \
         speedup {:.2}x on {} core(s)",
        spec.budget.label(),
        m.executed,
        m.wall_1,
        m.jobs_n,
        m.wall_n,
        m.wall_1 / m.wall_n,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    m
}

fn render(spec: &SweepSpec, m: &Measurement) -> String {
    let doc = Value::obj(vec![
        ("schema", Value::str(SCHEMA)),
        ("budget", Value::str(spec.budget.label())),
        ("fingerprint", Value::str(fingerprint(spec))),
        (
            "nproc_at_emit",
            Value::num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("executed_units", Value::num(m.executed as f64)),
        ("jobs_parallel", Value::num(m.jobs_n as f64)),
        ("wall_secs_jobs_1", Value::num(m.wall_1)),
        ("wall_secs_jobs_n", Value::num(m.wall_n)),
        ("speedup", Value::num(m.wall_1 / m.wall_n)),
    ]);
    format!("{}\n", doc.render())
}

fn check(path: &Path, spec: &SweepSpec) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "{} is missing or unreadable ({e}) — run `cargo bench -p snug-bench --bench \
             sweep_scaling -- --emit` and commit the result",
            path.display()
        )
    })?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let text_field = |name: &str| -> Result<String, String> {
        doc.get(name)
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("{}: {e}", path.display()))
    };
    let num_field = |name: &str| -> Result<f64, String> {
        doc.get(name)
            .and_then(|v| v.as_num())
            .map_err(|e| format!("{}: {e}", path.display()))
    };
    let schema = text_field("schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "{}: schema `{schema}` (expected `{SCHEMA}`)",
            path.display()
        ));
    }
    let committed_fp = text_field("fingerprint")?;
    if committed_fp != fingerprint(spec) {
        return Err(format!(
            "{} is stale: fingerprint {committed_fp} no longer matches the measurement \
             definition — regenerate with `--emit` and commit the result",
            path.display()
        ));
    }
    let committed_units = num_field("executed_units")? as usize;
    let m = measure(spec);
    if m.executed != committed_units {
        return Err(format!(
            "sweep plan drifted: committed {} executed units, measured {} — a behaviour \
             change; re-baseline with `--emit` if intended",
            committed_units, m.executed
        ));
    }
    println!(
        "BENCH_sweep note holds: {} units; committed {:.2} s → {:.2} s ({:.2}x on {} core(s) \
         at emit); measured above on this machine",
        committed_units,
        num_field("wall_secs_jobs_1")?,
        num_field("wall_secs_jobs_n")?,
        num_field("speedup")?,
        num_field("nproc_at_emit")? as usize,
    );
    Ok(())
}

fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `cargo test --benches` invokes bench binaries with `--test`: a
    // one-class quick sweep, and never touch or gate on the file.
    if args.iter().any(|a| a == "--test") {
        measure(&spec(BudgetPreset::Quick, vec![ComboClass::C5]));
        return;
    }
    let spec = spec(BudgetPreset::Mid, Vec::new());
    let path = default_path();
    let outcome = if args.iter().any(|a| a == "--emit") {
        let m = measure(&spec);
        std::fs::write(&path, render(&spec, &m))
            .map_err(|e| format!("writing {}: {e}", path.display()))
            .map(|()| {
                println!(
                    "wrote {} ({} units, budget {})",
                    path.display(),
                    m.executed,
                    spec.budget.label()
                );
            })
    } else if args.iter().any(|a| a == "--check") {
        check(&path, &spec)
    } else {
        measure(&spec);
        Ok(())
    };
    if let Err(msg) = outcome {
        eprintln!("sweep_scaling: {msg}");
        std::process::exit(1);
    }
}
