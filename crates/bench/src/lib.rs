//! # snug-bench — criterion benches over the experiment entry points
//!
//! The library target is intentionally empty: the crate exists for its
//! `benches/` directory, which regenerates the paper's figures/tables
//! under the criterion harness (vendored shim offline; the real crate
//! if registry access appears). Bench budgets mirror the `--quick`
//! preset so a full bench run stays interactive; use
//! `snug sweep --mid` (see `snug-harness`) for the calibrated paper
//! reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
