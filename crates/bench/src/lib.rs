//! Shared helpers for the criterion benches (see `benches/`).
