//! Offline stand-in for the `rand` crate.
//!
//! Supplies the subset the workload generators and CC use:
//! `rngs::SmallRng` (an xoshiro256++ behind `SeedableRng::seed_from_u64`)
//! with `Rng::{gen, gen_range, gen_bool}` over the integer and float
//! types that appear in the workspace. The bit streams differ from the
//! real `rand` crate, but every consumer in this workspace only relies
//! on *determinism* (same seed → same stream) and uniformity, both of
//! which hold.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics when empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % width) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x: u16 = rng.gen_range(3u16..=7);
            assert!((3..=7).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
            let y: u64 = rng.gen_range(0u64..u64::MAX);
            assert!(y < u64::MAX);
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints reachable");
    }
}
