//! Offline stand-in for the `rand` crate.
//!
//! Supplies the subset the workload generators and CC use:
//! `rngs::SmallRng` (an xoshiro256++ behind `SeedableRng::seed_from_u64`)
//! with `Rng::{gen, gen_range, gen_bool}` over the integer and float
//! types that appear in the workspace. The bit streams differ from the
//! real `rand` crate, but every consumer in this workspace only relies
//! on *determinism* (same seed → same stream) and uniformity, both of
//! which hold.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
///
/// `draw` is generic over the generator (not `&mut dyn RngCore`) so the
/// whole draw — including `next_u64` — inlines into the workload
/// generators' per-op hot path; a virtual call per random number costs
/// more than the xoshiro step itself.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics when empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `x % width` without the 128-bit soft-division of the widening
/// formulation, bit-for-bit identical to it: power-of-two widths reduce
/// by mask, the full-`u64::MAX` width (which only `0..u64::MAX` ranges
/// produce) maps `u64::MAX → 0` and is the identity elsewhere, and the
/// rest take one hardware 64-bit remainder. The workload generators'
/// hot path draws several ranged values per retired op, so the common
/// (power-of-two) widths must not pay a divide.
#[inline]
fn reduce(x: u64, width: u64) -> u64 {
    debug_assert!(width > 0);
    if width & (width - 1) == 0 {
        x & (width - 1)
    } else if width == u64::MAX {
        if x == u64::MAX {
            0
        } else {
            x
        }
    } else {
        x % width
    }
}

/// A divisor with a precomputed 128-bit reciprocal: `rem(x)` is exactly
/// `x % d` for every 64-bit `x`, without the hardware divide
/// (Lemire–Kaser–Kurz, "Faster remainders when the divisor is a
/// constant"). For hot loops that reduce by the *same* divisor on every
/// iteration — the workload generators' gap/burst widths and per-set
/// pool sizes — the handful of multiplies beats a data-dependent 64-bit
/// `div` several times over.
///
/// The precomputed magic is `ceil(2^128 / d)`; with a 64-bit numerator
/// and `d < 2^64` the fraction bits (128) cover `n + log2(d)` bits, the
/// published exactness condition. Power-of-two divisors reduce by mask
/// instead (their `ceil` wraps at `d = 1`, and the mask is cheaper
/// anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divisor {
    d: u64,
    magic: u128,
}

impl Divisor {
    /// Precompute the reciprocal of `d`. Panics when `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero");
        Divisor {
            d,
            magic: (u128::MAX / d as u128).wrapping_add(1),
        }
    }

    /// The divisor itself.
    #[inline]
    pub fn get(self) -> u64 {
        self.d
    }

    /// `x % d`, exactly. (An inherent method, not `ops::Rem`: the
    /// operands read naturally as divisor-first at every call site,
    /// which `d % x` would invert.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, x: u64) -> u64 {
        if self.d & (self.d - 1) == 0 {
            return x & (self.d - 1);
        }
        // lowbits = (magic * x) mod 2^128 holds the fractional part of
        // x/d; scaling it back by d and keeping the top 64 bits yields
        // the remainder.
        let low = self.magic.wrapping_mul(x as u128);
        let hi = low >> 64;
        let lo = low as u64 as u128;
        ((hi * self.d as u128 + ((lo * self.d as u128) >> 64)) >> 64) as u64
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // Exclusive width over a ≤64-bit type always fits in u64.
                let width = (self.end as u64) - (self.start as u64);
                self.start + (reduce(rng.next_u64(), width) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    // Full 64-bit range: reduction mod 2^64 is a no-op.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform value in `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean far from 0.5");
    }

    #[test]
    fn reduce_matches_widening_modulo() {
        let mut rng = SmallRng::seed_from_u64(11);
        let widths = [
            1u64,
            2,
            3,
            5,
            7,
            8,
            16,
            37,
            255,
            256,
            1 << 33,
            (1 << 40) - 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        for _ in 0..10_000 {
            let x: u64 = rng.gen();
            for &w in &widths {
                let expect = ((x as u128) % (w as u128)) as u64;
                assert_eq!(super::reduce(x, w), expect, "x={x} w={w}");
            }
        }
        assert_eq!(super::reduce(u64::MAX, u64::MAX), 0);
    }

    #[test]
    fn divisor_rem_is_exact() {
        let divisors = [
            1u64,
            2,
            3,
            5,
            7,
            8,
            9,
            16,
            31,
            33,
            255,
            257,
            65_521,
            65_535,
            65_536,
            1_000_003,
            (1 << 32) - 1,
            (1 << 32) + 1,
            (1 << 62) + 3,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut rng = SmallRng::seed_from_u64(17);
        for &d in &divisors {
            let div = super::Divisor::new(d);
            // Structured numerators around multiples of d and the
            // extremes, plus random draws.
            let mut xs = vec![
                0u64,
                1,
                d - 1,
                d,
                d.saturating_add(1),
                u64::MAX,
                u64::MAX - 1,
            ];
            for k in [1u64, 2, 3, 1000] {
                for off in [-1i64, 0, 1] {
                    let m = (u64::MAX / d).saturating_sub(k).wrapping_mul(d);
                    xs.push(m.wrapping_add(off as u64));
                }
            }
            for _ in 0..5000 {
                xs.push(rng.gen());
            }
            for x in xs {
                assert_eq!(div.rem(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x: u16 = rng.gen_range(3u16..=7);
            assert!((3..=7).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
            let y: u64 = rng.gen_range(0u64..u64::MAX);
            assert!(y < u64::MAX);
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints reachable");
    }
}
