//! Offline stand-in for `serde`.
//!
//! The workspace cannot reach crates.io, so this shim supplies the two
//! trait names and the derive macros the simulator crates import. The
//! traits are satisfied by every type (blanket impls): they serve as
//! documentation that a type is meant to be serialisable. The actual
//! on-disk format used by the harness is the hand-written JSON codec in
//! `snug_harness::json`, which does not go through these traits.
//!
//! If the real serde ever becomes available, deleting `vendor/serde*`
//! and pointing the manifests at crates.io restores full serde without
//! touching any annotated type.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serialisable types (shim: satisfied by everything).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserialisable types (shim: satisfied by everything).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
