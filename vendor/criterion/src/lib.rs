//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the `snug-bench` targets use
//! (`Criterion::bench_function`, benchmark groups, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros)
//! with a simple mean-of-samples timer instead of criterion's full
//! statistical machinery. When a bench binary is invoked with `--test`
//! (as `cargo test --benches` does) each closure runs exactly once so
//! the suite stays fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time one benchmark closure within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Finish the group (drop-equivalent; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `iterations` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, test_mode: bool, f: &mut F) {
    // Warm-up (skipped in test mode).
    let samples = if test_mode { 1 } else { samples };
    if !test_mode {
        let mut warm = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
    }
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iterations;
    }
    let mean = total.as_secs_f64() / iters.max(1) as f64;
    println!(
        "bench {id:<40} {:>12.3} µs/iter ({iters} iters)",
        mean * 1e6
    );
}

/// Declare a function that runs a list of bench targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut runs = 0;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        assert!(runs >= 1);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        g.bench_function("inner", |b| b.iter(|| ()));
        g.finish();
    }
}
