//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the test-suite uses:
//! integer range strategies, `collection::vec`, `bool::ANY`, tuple
//! strategies, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros. Each property runs a fixed number of deterministic cases
//! (seeded from the test name, so failures reproduce exactly); there is
//! no shrinking — the failing inputs are printed instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub const DEFAULT_CASES: u32 = 64;

/// FNV-1a over a string — stable seed derivation for test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn below(&mut self, width: u128) -> u128 {
        assert!(width > 0, "empty range");
        self.next_u64() as u128 % width
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` — draw another.
    Reject,
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.below(width) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.below(width) as $t)
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform true/false.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Allowed lengths for a generated collection (inclusive bounds).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u128) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Strategy, TestCaseError, TestRng};
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Reject the current case (draw a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running [`DEFAULT_CASES`] cases seeded from the test name.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut seed: u64 = $crate::fnv1a(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < $crate::DEFAULT_CASES {
                    seed = seed.wrapping_add(0xA076_1D64_78BD_642F);
                    let mut case_rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut case_rng);)+
                    let rendered_inputs =
                        format!(concat!($("\n  ", stringify!($arg), " = {:?}",)+), $(&$arg),+);
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < $crate::DEFAULT_CASES * 50,
                                "{}: too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} falsified (case {}, seed {seed:#x}):\n{msg}\ninputs:{rendered_inputs}",
                                stringify!($name),
                                accepted + 1,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::fnv1a;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 1usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in proptest::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn tuples_and_bools(pair in (0u32..4, proptest::bool::ANY)) {
            let (n, _flag) = pair;
            prop_assert!(n < 4);
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        let mut a = TestRng::new(fnv1a("x"));
        let mut b = TestRng::new(fnv1a("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(n in 0u8..10) {
                prop_assert!(n > 100, "n = {n} is not > 100");
            }
        }
        always_fails();
    }
}
