//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset the workspace uses: cheaply-cloneable
//! immutable [`Bytes`] views over shared storage, a growable
//! [`BytesMut`] builder, and little-endian integer get/put through the
//! [`Buf`]/[`BufMut`] traits. Semantics (panics on under-read, `slice`
//! bounds checking, `freeze` sharing) match upstream for this subset.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same storage. Panics when out of range.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

fn debug_bytes(bytes: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        write!(f, "\\x{b:02x}")?;
    }
    write!(f, "\"")
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Consume one byte. Panics when empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u32`. Panics on under-read.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le under-read");
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`. Panics on under-read.
    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le under-read");
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

/// Write access to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_integers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(0xDEAD_BEEF_0BAD_F00D);
        b.put_u32_le(42);
        b.put_u8(7);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u64_le(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(bytes.get_u32_le(), 42);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage_and_bounds_check() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = bytes.slice(1..4);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert_eq!(mid.slice(..2).as_slice(), &[2, 3]);
        assert_eq!(bytes.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_slice_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    #[should_panic(expected = "under-read")]
    fn under_read_panics() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        b.get_u64_le();
    }
}
