//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors API-compatible shims for the handful of external crates the
//! code uses. Serialisation in this workspace goes through
//! `snug_harness::json` (hand-written codecs); the serde derives only
//! need to *parse* so the annotated types keep their upstream-compatible
//! shape. Each derive therefore accepts the usual syntax (including
//! `#[serde(...)]` helper attributes) and expands to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
