//! Property-based tests (proptest) on the core data structures and the
//! invariants the paper's formulas rely on.

use proptest::prelude::*;
use sim_cache::{
    block_required, DemandMonitor, DemandParams, LruOrder, SetDemandProfiler, ShadowSet, TagStack,
    WriteBuffer,
};
use sim_mem::{BlockAddr, Geometry, Trace};
use snug_core::{GroupCase, GtVector, OverheadParams};

proptest! {
    /// Mattson's stack property (paper §2.1): hit_count(S, I, A) is
    /// monotonically non-decreasing in A for any reference string.
    #[test]
    fn stack_property_holds_for_any_reference_string(
        refs in proptest::collection::vec(0u64..64, 1..600)
    ) {
        let mut profiler = SetDemandProfiler::new(1, 32);
        for &r in &refs {
            profiler.access(0, BlockAddr(r));
        }
        let h = profiler.histogram(0);
        let mut prev = 0;
        for a in 1..=32 {
            let c = h.hit_count(a);
            prop_assert!(c >= prev, "hit_count not monotone at A={a}");
            prev = c;
        }
        // Conservation: hits at threshold + cold = total references.
        prop_assert_eq!(h.hit_count(32) + h.cold(), refs.len() as u64);
    }

    /// block_required is minimal: one fewer way must lose hits (or the
    /// demand is 1).
    #[test]
    fn block_required_is_minimal(
        refs in proptest::collection::vec(0u64..48, 50..600)
    ) {
        let params = DemandParams::paper();
        let mut profiler = SetDemandProfiler::new(1, 32);
        for &r in &refs {
            profiler.access(0, BlockAddr(r));
        }
        let h = profiler.histogram(0);
        let br = block_required(h, &params);
        prop_assert!((1..=32).contains(&br));
        prop_assert_eq!(h.hit_count(br), h.hit_count(32), "br satisfies Formula (3)");
        if br > 1 {
            prop_assert!(h.hit_count(br - 1) < h.hit_count(32), "br-1 must not satisfy it");
        }
    }

    /// Every demand value lands in exactly one bucket (Formula 4's
    /// membership function is a partition).
    #[test]
    fn buckets_partition_the_demand_range(br in 1usize..=32) {
        let params = DemandParams::paper();
        let j = params.bucket_of(br);
        let (lo, hi) = params.bucket_range(j);
        prop_assert!((lo..=hi).contains(&br));
        let others = (1..=8).filter(|&k| k != j).filter(|&k| {
            let (l, h) = params.bucket_range(k);
            (l..=h).contains(&br)
        }).count();
        prop_assert_eq!(others, 0);
    }

    /// An LRU order always remains a permutation of the ways under any
    /// touch/demote sequence.
    #[test]
    fn lru_order_stays_a_permutation(
        ops in proptest::collection::vec((0usize..8, proptest::bool::ANY), 1..200)
    ) {
        let mut lru = LruOrder::new(8);
        for (way, demote) in ops {
            if demote {
                lru.demote(way);
            } else {
                lru.touch(way);
            }
            let mut seen: Vec<usize> = lru.iter_mru_to_lru().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..8).collect::<Vec<_>>());
        }
    }

    /// A touched way is always MRU, and touch reports its old position.
    #[test]
    fn touch_promotes_to_mru(ways in proptest::collection::vec(0usize..6, 1..100)) {
        let mut lru = LruOrder::new(6);
        for w in ways {
            let pos = lru.touch(w);
            prop_assert!((1..=6).contains(&pos));
            prop_assert_eq!(lru.position(w), 1);
        }
    }

    /// TagStack reports distances consistent with an exact LRU stack:
    /// re-referencing after k distinct intervening tags yields k+1.
    #[test]
    fn tag_stack_distance_counts_distinct_intervening(
        target in 1000u64..2000,
        between in proptest::collection::vec(0u64..24, 0..16)
    ) {
        let mut stack = TagStack::new(32);
        stack.access(target);
        let mut distinct = std::collections::HashSet::new();
        for &t in &between {
            stack.access(t);
            distinct.insert(t);
        }
        let d = stack.access(target);
        prop_assert_eq!(d, Some(distinct.len() + 1));
    }

    /// The demand monitor's taker verdict matches the paper's σ > 1/p
    /// criterion when fed `shadow` shadow-hits uniformly interleaved
    /// among `real` real-hits (strictly: verdict is never taker when
    /// σ < 1/p − margin, always taker when σ > 1/p + margin).
    #[test]
    fn monitor_tracks_sigma_threshold(shadow in 0u32..60, real in 0u32..400) {
        let mut m = DemandMonitor::new(8, 8); // wide counter: no saturation noise
        let total = shadow + real;
        prop_assume!(total > 50);
        // Interleave deterministically.
        let mut s_done = 0;
        let mut r_done = 0;
        for i in 0..total {
            // Largest remainder scheduling of shadow events.
            if (i as u64 * shadow as u64) / total as u64 > s_done {
                m.shadow_hit();
                s_done = (i as u64 * shadow as u64) / total as u64;
            } else if r_done < real {
                m.real_hit();
                r_done += 1;
            } else {
                m.shadow_hit();
            }
        }
        let sigma = shadow as f64 / total as f64;
        if sigma > 0.125 + 0.05 {
            prop_assert!(m.is_taker(), "σ={sigma:.3} must be taker");
        }
        if sigma < 0.125 - 0.05 {
            prop_assert!(!m.is_taker(), "σ={sigma:.3} must be giver");
        }
    }

    /// Shadow sets remain strictly exclusive: after any operation
    /// sequence, a lookup-hit tag is gone.
    #[test]
    fn shadow_lookup_consumes_entry(
        ops in proptest::collection::vec((0u64..32, proptest::bool::ANY), 1..200)
    ) {
        let mut s = ShadowSet::new(8);
        for (tag, insert) in ops {
            if insert {
                s.insert(BlockAddr(tag));
            } else if s.lookup_invalidate(BlockAddr(tag)) {
                prop_assert!(!s.contains(BlockAddr(tag)));
            }
            prop_assert!(s.len() <= 8);
        }
    }

    /// Write buffer: FIFO drain order equals insertion order of distinct
    /// blocks; occupancy never exceeds capacity.
    #[test]
    fn write_buffer_fifo_and_bounded(
        blocks in proptest::collection::vec(0u64..12, 1..60)
    ) {
        let mut wb = WriteBuffer::new(8);
        let mut expected = Vec::new();
        for b in blocks {
            let block = BlockAddr(b);
            if expected.contains(&block) {
                // merge
                wb.push(block);
            } else if expected.len() < 8 {
                wb.push(block);
                expected.push(block);
            }
            prop_assert!(wb.len() <= 8);
        }
        for e in expected {
            prop_assert_eq!(wb.drain_one(), Some(e));
        }
        prop_assert_eq!(wb.drain_one(), None);
    }

    /// Trace serialisation round-trips arbitrary op streams.
    #[test]
    fn trace_round_trip(
        ops in proptest::collection::vec((0u64..1u64<<40, 0u32..64, 0u8..3, proptest::bool::ANY), 0..200)
    ) {
        let mut t = Trace::new();
        for (addr, gap, kind, critical) in ops {
            let access = match kind {
                0 => sim_mem::Access::load(addr),
                1 => sim_mem::Access::store(addr),
                _ => sim_mem::Access::ifetch(addr),
            };
            t.push(sim_mem::CoreOp { gap, access, critical });
        }
        let back = Trace::from_bytes(t.to_bytes()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Geometry decomposition is lossless for any block address.
    #[test]
    fn geometry_compose_locate_roundtrip(block in 0u64..(1u64 << 50)) {
        let g = Geometry::paper_l2();
        let b = BlockAddr(block);
        let set = g.set_index(b);
        let tag = g.arch_tag(b);
        prop_assert_eq!(g.compose(set, tag), b);
        prop_assert!(set < 1024);
    }

    /// The G/T grouping cases are exhaustive and mutually exclusive for
    /// any vector and set.
    #[test]
    fn group_cases_are_consistent(
        bits in proptest::collection::vec(proptest::bool::ANY, 8),
        set in 0usize..8
    ) {
        let mut v = GtVector::all_givers(8);
        v.latch(bits.clone());
        match v.group_case(set, true) {
            GroupCase::SameIndex => prop_assert!(!bits[set]),
            GroupCase::FlippedIndex => {
                prop_assert!(bits[set]);
                prop_assert!(!bits[set ^ 1]);
            }
            GroupCase::NoMatch => {
                prop_assert!(bits[set]);
                prop_assert!(bits[set ^ 1]);
            }
        }
        // Without flipping, case 2 never appears.
        prop_assert!(v.group_case(set, false) != GroupCase::FlippedIndex);
    }

    /// Storage overhead is monotone in address width and antitone in
    /// block size, and stays within (0, 10%) for sane parameters.
    #[test]
    fn overhead_monotonicity(addr in 30u32..64, block_exp in 6u32..8) {
        let p = OverheadParams {
            address_bits: addr,
            block_bytes: 1 << block_exp,
            ..OverheadParams::paper()
        };
        let o = p.storage_overhead();
        prop_assert!(o > 0.0 && o < 0.10);
        let wider = OverheadParams { address_bits: addr + 1, ..p };
        prop_assert!(wider.storage_overhead() >= o);
    }
}
