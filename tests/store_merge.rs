//! `snug store merge`: folding sharded stores from multi-machine sweeps
//! into one store under gc's newest-entry-per-key rule, and the
//! idempotence contract — merging the same shard again (and gc'ing)
//! changes nothing.

use snug_harness::{MergeStats, ResultStore, StoredResult};
use snug_sim::experiments::SchemeRun;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snug-merge-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn unit(scheme: &str, tp: f64) -> StoredResult {
    StoredResult::Unit(SchemeRun {
        scheme: scheme.into(),
        ipcs: vec![1.0, 0.5, tp],
        measured_cycles: None,
        stop_reason: None,
        plateaus: Vec::new(),
    })
}

/// Build a store under `dir` with the given (key, throughput) units and
/// return the path of its JSONL file.
fn build_store(dir: &PathBuf, entries: &[(&str, f64)]) -> PathBuf {
    let mut store = ResultStore::open(dir).unwrap();
    for (key, tp) in entries {
        store
            .insert(key.to_string(), format!("inputs-{key}"), unit(key, *tp))
            .unwrap();
    }
    dir.join("store.jsonl")
}

#[test]
fn merge_folds_shards_newest_entry_per_key() {
    let main_dir = tmp_dir("main");
    let shard_dir = tmp_dir("shard");
    build_store(&main_dir, &[("k1", 1.0), ("k2", 1.0)]);
    // The shard agrees on k1, disagrees on k2, and brings k3.
    let shard = build_store(&shard_dir, &[("k1", 1.0), ("k2", 2.0), ("k3", 3.0)]);

    let mut store = ResultStore::open(&main_dir).unwrap();
    let stats = store.merge_file(&shard).unwrap();
    assert_eq!(
        stats,
        MergeStats {
            read: 3,
            added: 1,
            superseded: 1,
            unchanged: 1,
        }
    );
    assert_eq!(store.len(), 3);
    // Shard entries win on collision — the same rule gc applies to
    // later lines of one file.
    assert_eq!(store.get("k2").unwrap(), &unit("k2", 2.0));
    assert_eq!(store.get("k3").unwrap(), &unit("k3", 3.0));
    store.compact().unwrap();

    // Everything survives a reopen from disk.
    let back = ResultStore::open(&main_dir).unwrap();
    assert_eq!(back.len(), 3);
    assert_eq!(back.get("k2").unwrap(), &unit("k2", 2.0));

    fs::remove_dir_all(&main_dir).unwrap();
    fs::remove_dir_all(&shard_dir).unwrap();
}

#[test]
fn merge_then_gc_is_idempotent() {
    let main_dir = tmp_dir("idem-main");
    let shard_dir = tmp_dir("idem-shard");
    build_store(&main_dir, &[("a", 1.0)]);
    let shard = build_store(&shard_dir, &[("a", 1.5), ("b", 2.0)]);

    // First merge ∘ gc reaches the fixed point...
    let mut store = ResultStore::open(&main_dir).unwrap();
    store.merge_file(&shard).unwrap();
    store.compact().unwrap();
    let bytes = fs::read(main_dir.join("store.jsonl")).unwrap();

    // ...and a second merge ∘ gc of the same shard changes nothing:
    // every shard entry is already present and identical, so nothing is
    // re-appended and gc drops nothing.
    let mut again = ResultStore::open(&main_dir).unwrap();
    let stats = again.merge_file(&shard).unwrap();
    assert_eq!(stats.added + stats.superseded, 0, "all unchanged");
    assert_eq!(stats.unchanged, 2);
    assert_eq!(again.compact().unwrap(), (2, 0));
    assert_eq!(
        fs::read(main_dir.join("store.jsonl")).unwrap(),
        bytes,
        "merge ∘ gc is idempotent byte-for-byte"
    );

    fs::remove_dir_all(&main_dir).unwrap();
    fs::remove_dir_all(&shard_dir).unwrap();
}

#[test]
fn merge_tolerates_a_partial_trailing_shard_line_and_rejects_interior_corruption() {
    let main_dir = tmp_dir("tail-main");
    let shard_dir = tmp_dir("tail-shard");
    build_store(&main_dir, &[]);
    let shard = build_store(&shard_dir, &[("x", 1.0)]);

    // An interrupted shard append leaves a partial last line: merged
    // minus the tail.
    let mut text = fs::read_to_string(&shard).unwrap();
    text.push_str("{\"key\":\"y\",\"inp");
    fs::write(&shard, &text).unwrap();
    let mut store = ResultStore::open(&main_dir).unwrap();
    let stats = store.merge_file(&shard).unwrap();
    assert_eq!((stats.read, stats.added), (1, 1));
    assert!(store.get("x").is_some());

    // Corruption anywhere else stays fatal.
    let good_line = fs::read_to_string(&shard)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    fs::write(&shard, format!("{{nope\n{good_line}\n")).unwrap();
    assert!(store.merge_file(&shard).is_err());

    fs::remove_dir_all(&main_dir).unwrap();
    fs::remove_dir_all(&shard_dir).unwrap();
}
