//! The parallel-determinism contract of `snug sweep --jobs N` (ISSUE 7):
//! however many workers execute a sweep, the post-merge
//! `results/store.jsonl` is byte-identical to a sequential run —
//! completed units land in plan order, never completion order — and a
//! re-run over the merged store is 100% cache hits. Also covers crash
//! recovery at the process boundary: a sweep killed mid-flight leaves
//! per-worker shards (possibly with a torn trailing line) that the next
//! run folds back in, re-executing only the missing units.

use snug_harness::{run_sweep, BudgetPreset, ResultStore, StopPreset, SweepSpec};
use snug_workloads::{ComboClass, PhaseSchedule};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snug-par-det-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A three-combo (27-unit) plan small enough to run a dozen times.
fn tiny_spec(stop: StopPreset, phase_shift: Option<&str>) -> SweepSpec {
    SweepSpec {
        name: "par-det".into(),
        classes: vec![ComboClass::C5],
        combos: Vec::new(),
        budget: BudgetPreset::Custom {
            warmup_cycles: 10_000,
            measure_cycles: 60_000,
        },
        stop,
        phase_shift: phase_shift.map(|s| {
            PhaseSchedule::parse(s)
                .expect("valid test schedule")
                .fingerprint()
        }),
        shared_warmup: false,
    }
}

fn store_path(dir: &Path) -> PathBuf {
    dir.join(snug_harness::store::STORE_FILE)
}

/// Run the spec with `jobs` workers in a fresh store and return the
/// merged store bytes (after asserting the sweep executed everything).
fn store_bytes(spec: &SweepSpec, jobs: usize, tag: &str) -> Vec<u8> {
    let dir = tmp_dir(tag);
    let mut store = ResultStore::open(&dir).unwrap();
    let outcome = run_sweep(spec, &mut store, jobs, |_| {}).unwrap();
    assert_eq!(outcome.cache_hits, 0, "{tag}: fresh store");
    assert!(outcome.executed > 0, "{tag}: something ran");
    drop(store);

    // A re-run over the merged store plans nothing, at any worker count.
    let mut reopened = ResultStore::open(&dir).unwrap();
    let again = run_sweep(spec, &mut reopened, 8, |_| {}).unwrap();
    assert_eq!(again.executed, 0, "{tag}: re-run is all cache hits");
    assert_eq!(again.cache_hits, outcome.executed);
    drop(reopened);

    let bytes = std::fs::read(store_path(&dir)).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    bytes
}

fn assert_jobs_invariant(spec: &SweepSpec, tag: &str) {
    let reference = store_bytes(spec, 1, &format!("{tag}-j1"));
    for jobs in [2, 4, 8] {
        let parallel = store_bytes(spec, jobs, &format!("{tag}-j{jobs}"));
        assert_eq!(
            parallel, reference,
            "{tag}: --jobs {jobs} store differs from --jobs 1"
        );
    }
}

#[test]
fn fixed_plan_stores_are_byte_identical_across_worker_counts() {
    assert_jobs_invariant(&tiny_spec(StopPreset::Fixed, None), "fixed");
}

#[test]
fn converged_plan_stores_are_byte_identical_across_worker_counts() {
    // Convergence introduces the pacing graph: every combo's paced
    // siblings wait on its L2P baseline, so this exercises dependency
    // scheduling, not just free fan-out.
    let spec = tiny_spec(
        StopPreset::Converged {
            window_cycles: Some(15_000),
            rel_epsilon: Some(0.05),
        },
        None,
    );
    assert_jobs_invariant(&spec, "conv");
}

#[test]
fn reconverged_shifted_plan_stores_are_byte_identical_across_worker_counts() {
    let spec = tiny_spec(
        StopPreset::Reconverged {
            window_cycles: Some(15_000),
            rel_epsilon: Some(0.05),
        },
        Some("30000:demand=60"),
    );
    assert_jobs_invariant(&spec, "reconv");
}

#[test]
fn crashed_sweep_recovers_shards_and_reruns_only_missing_units() {
    let spec = tiny_spec(StopPreset::Fixed, None);

    // Reference: a clean sequential run.
    let ref_dir = tmp_dir("crash-ref");
    let mut ref_store = ResultStore::open(&ref_dir).unwrap();
    run_sweep(&spec, &mut ref_store, 1, |_| {}).unwrap();
    drop(ref_store);
    let reference = std::fs::read_to_string(store_path(&ref_dir)).unwrap();

    // Forge the crash site: a store directory whose only content is a
    // worker shard holding the first seven completed units plus a torn
    // trailing line (the write the "kill" interrupted).
    let crash_dir = tmp_dir("crash-site");
    let shards = crash_dir.join(snug_harness::SHARDS_DIR);
    std::fs::create_dir_all(&shards).unwrap();
    let complete: Vec<&str> = reference.lines().take(7).collect();
    std::fs::write(
        shards.join("worker-2.jsonl"),
        format!("{}\n{{\"key\":\"torn-", complete.join("\n")),
    )
    .unwrap();

    let mut store = ResultStore::open(&crash_dir).unwrap();
    let outcome = run_sweep(&spec, &mut store, 4, |_| {}).unwrap();
    assert_eq!(outcome.cache_hits, 7, "recovered units are cache hits");
    assert_eq!(outcome.executed, 27 - 7, "only the missing units re-ran");
    drop(store);

    assert_eq!(
        std::fs::read_to_string(store_path(&crash_dir)).unwrap(),
        reference,
        "recovered + re-run store matches the clean sequential store"
    );
    assert!(
        !shards.exists(),
        "consumed shards are deleted after the merge"
    );

    std::fs::remove_dir_all(&ref_dir).unwrap();
    std::fs::remove_dir_all(&crash_dir).unwrap();
}
