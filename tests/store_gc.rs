//! Store compaction (`snug store gc`) against the committed result
//! store: gc is idempotent, and a gc'd copy of `results/store.jsonl`
//! still renders the committed `EXPERIMENTS.md` byte-identically.

use snug_harness::{cached_results, render_experiments_md, BudgetPreset, ResultStore, SweepSpec};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snug-gc-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy the committed store into a scratch dir, appending `dup_lines`
/// re-appended (superseded) copies of its first line.
fn committed_store_copy(dir: &Path, dup_lines: usize) {
    let committed = repo_root().join("results/store.jsonl");
    let text = fs::read_to_string(&committed).expect("committed store present");
    let first = text.lines().next().expect("non-empty store").to_string();
    let mut out = text;
    for _ in 0..dup_lines {
        out.push_str(&first);
        out.push('\n');
    }
    fs::write(dir.join("store.jsonl"), out).unwrap();
}

#[test]
fn gc_is_idempotent_and_preserves_experiments_md() {
    let dir = tmp_dir("experiments");
    committed_store_copy(&dir, 2);

    let mut store = ResultStore::open(&dir).unwrap();
    let entries = store.len();
    assert_eq!(store.file_lines(), entries + 2, "duplicates on disk");

    // First gc drops exactly the superseded lines; second drops none
    // and leaves the bytes untouched.
    let (kept, dropped) = store.compact().unwrap();
    assert_eq!((kept, dropped), (entries, 2));
    let bytes = fs::read(dir.join("store.jsonl")).unwrap();
    assert_eq!(store.compact().unwrap(), (entries, 0));
    assert_eq!(fs::read(dir.join("store.jsonl")).unwrap(), bytes);

    // The gc'd store reproduces the committed EXPERIMENTS.md
    // byte-identically.
    let reopened = ResultStore::open(&dir).unwrap();
    let spec = SweepSpec::full(BudgetPreset::Mid);
    let results =
        cached_results(&spec, &reopened).expect("gc'd store still serves the full mid evaluation");
    let rendered = render_experiments_md(&spec, &results);
    let committed_md = fs::read_to_string(repo_root().join("EXPERIMENTS.md")).unwrap();
    assert_eq!(
        rendered, committed_md,
        "gc must not change what the store renders to"
    );

    fs::remove_dir_all(&dir).unwrap();
}
