//! The session API's determinism contract, pinned for every scheme:
//!
//! 1. any interleaving of `step()` / `run_until()` calls retires the
//!    same operation sequence — and therefore the same measured result —
//!    as one `run_to_completion()` (which is also what the legacy
//!    `CmpSystem::run` wrapper drives);
//! 2. snapshot → restore → resume is bit-identical to the uninterrupted
//!    run, however the original session continues afterwards.

use proptest::prelude::*;
use sim_cmp::{CmpSystem, L2Org, SimSession, SystemConfig, SystemResult};
use sim_mem::OpStream;
use snug_core::{DsrConfig, SchemeSpec, SnugConfig};
use snug_workloads::Benchmark;

const WARMUP: u64 = 3_000;
const MEASURE: u64 = 30_000;

/// Small SNUG stages so several sampling periods fit the tiny window.
fn tiny_snug() -> SnugConfig {
    let mut c = SnugConfig::paper();
    c.stage1_cycles = 2_000;
    c.stage2_cycles = 8_000;
    c.continuous_sampling = true;
    c
}

/// The five schemes under test, in a stable order for proptest
/// indexing.
fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::L2p,
        SchemeSpec::L2s,
        SchemeSpec::Cc {
            spill_probability: 0.75,
        },
        SchemeSpec::Dsr(DsrConfig::tiny()),
        SchemeSpec::Snug(tiny_snug()),
    ]
}

/// A mixed multiprogrammed workload on the tiny platform: synthetic
/// streams (with RNG state) so snapshots must capture generator state
/// faithfully.
fn streams(cfg: &SystemConfig) -> Vec<Box<dyn OpStream>> {
    [
        Benchmark::Ammp,
        Benchmark::Vortex,
        Benchmark::Art,
        Benchmark::Applu,
    ]
    .iter()
    .enumerate()
    .map(|(core, b)| Box::new(b.spec().stream(cfg.l2_slice, core)) as Box<dyn OpStream>)
    .collect()
}

fn session(spec: &SchemeSpec) -> SimSession<Box<dyn L2Org>> {
    let cfg = SystemConfig::tiny_test();
    SimSession::builder(cfg, spec.build(cfg))
        .streams(streams(&cfg))
        .budget(WARMUP, MEASURE)
        .build()
}

fn reference(spec: &SchemeSpec) -> SystemResult {
    session(spec).run_to_completion()
}

#[test]
fn one_shot_wrapper_equals_session_for_every_scheme() {
    for spec in schemes() {
        let cfg = SystemConfig::tiny_test();
        let mut sys = CmpSystem::new(cfg, spec.build(cfg));
        let wrapper = sys.run(streams(&cfg), WARMUP, MEASURE);
        assert_eq!(wrapper, reference(&spec), "{spec}");
    }
}

#[test]
fn fixed_awkward_interleaving_matches_for_every_scheme() {
    for spec in schemes() {
        let expected = reference(&spec);
        let mut s = session(&spec);
        for _ in 0..500 {
            s.step();
        }
        for t in (0..WARMUP + MEASURE + 2_000).step_by(1_234) {
            s.run_until(t);
            s.step();
        }
        assert_eq!(s.run_to_completion(), expected, "{spec}");
    }
}

proptest! {
    /// Random step/run_until interleavings are bit-identical to the
    /// one-shot run for a randomly chosen scheme.
    #[test]
    fn interleaved_driving_is_bit_identical(
        scheme_idx in 0usize..5,
        step_runs in proptest::collection::vec(1usize..400, 0..6),
        hops in proptest::collection::vec(1u64..9_000, 0..8),
    ) {
        let spec = schemes()[scheme_idx];
        let expected = reference(&spec);
        let mut s = session(&spec);
        let mut cursor = 0;
        for (i, hop) in hops.iter().enumerate() {
            cursor += hop;
            s.run_until(cursor);
            if let Some(n) = step_runs.get(i) {
                for _ in 0..*n {
                    s.step();
                }
            }
        }
        prop_assert_eq!(s.run_to_completion(), expected);
    }

    /// Snapshot → restore → resume reproduces the uninterrupted run,
    /// wherever the snapshot is taken — before, at, or after the
    /// warm-up boundary.
    #[test]
    fn snapshot_restore_resume_is_bit_identical(
        scheme_idx in 0usize..5,
        snap_at in 1u64..(WARMUP + MEASURE),
    ) {
        let spec = schemes()[scheme_idx];
        let expected = reference(&spec);

        let mut original = session(&spec);
        original.run_until(snap_at);
        let snap = original.snapshot().expect("streams snapshot");

        // The original, resumed, still matches.
        prop_assert_eq!(original.run_to_completion(), expected.clone());

        // A session restored from the snapshot matches too.
        let mut restored = snap.to_session().expect("snapshot replays");
        prop_assert_eq!(restored.run_to_completion(), expected);
    }
}
