//! The session API's determinism contract, pinned for every scheme:
//!
//! 1. any interleaving of `step()` / `run_until()` calls retires the
//!    same operation sequence — and therefore the same measured result —
//!    as one `run_to_completion()` (which is also what the legacy
//!    `CmpSystem::run` wrapper drives);
//! 2. snapshot → restore → resume is bit-identical to the uninterrupted
//!    run, however the original session continues afterwards;
//! 3. a `Converged`-policy run stops at the same cycle and retires the
//!    identical op sequence across interleaved stepping and
//!    snapshot → restore → resume (the early-exit decision is a pure
//!    function of the frontier-derived observation sequence);
//! 4. a phase-change schedule (mid-run stream shifts) keeps all of the
//!    above: shifts land before the identical operation in every
//!    interleaving and travel with snapshots, and a `Reconverged`
//!    policy's extended stop cycle and per-phase plateau records are
//!    interleaving- and snapshot-invariant;
//! 5. observability is *observational*: harvesting `counters()` or
//!    enabling probe recording never perturbs the retired op sequence,
//!    and the measured-window counters themselves are interleaving- and
//!    snapshot-invariant (they travel with snapshots). The whole file
//!    compiles and passes with the `obs` feature on or off — with it
//!    off, counters read zero but the determinism contract is
//!    unchanged.

use proptest::prelude::*;
use sim_cmp::{CmpSystem, L2Org, RunPlan, SimSession, SystemConfig, SystemResult};
use sim_mem::{OpStream, ShiftDirective, StreamShift};
use snug_core::{DsrConfig, SchemeSpec, SnugConfig};
use snug_workloads::Benchmark;

const WARMUP: u64 = 3_000;
const MEASURE: u64 = 30_000;

/// Small SNUG stages so several sampling periods fit the tiny window.
fn tiny_snug() -> SnugConfig {
    let mut c = SnugConfig::paper();
    c.stage1_cycles = 2_000;
    c.stage2_cycles = 8_000;
    c.continuous_sampling = true;
    c
}

/// The five schemes under test, in a stable order for proptest
/// indexing.
fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::L2p,
        SchemeSpec::L2s,
        SchemeSpec::Cc {
            spill_probability: 0.75,
        },
        SchemeSpec::Dsr(DsrConfig::tiny()),
        SchemeSpec::Snug(tiny_snug()),
    ]
}

/// A mixed multiprogrammed workload on the tiny platform: synthetic
/// streams (with RNG state) so snapshots must capture generator state
/// faithfully.
fn streams(cfg: &SystemConfig) -> Vec<Box<dyn OpStream>> {
    [
        Benchmark::Ammp,
        Benchmark::Vortex,
        Benchmark::Art,
        Benchmark::Applu,
    ]
    .iter()
    .enumerate()
    .map(|(core, b)| Box::new(b.spec().stream(cfg.l2_slice, core)) as Box<dyn OpStream>)
    .collect()
}

fn session(spec: &SchemeSpec) -> SimSession<Box<dyn L2Org>> {
    let cfg = SystemConfig::tiny_test();
    SimSession::builder(cfg, spec.build(cfg))
        .streams(streams(&cfg))
        .budget(WARMUP, MEASURE)
        .build()
}

fn reference(spec: &SchemeSpec) -> SystemResult {
    session(spec).run_to_completion()
}

/// A converged-policy plan loose enough that every scheme's steady
/// synthetic streams stop well before the horizon: 2 K-cycle sample
/// windows, 50 % tolerance, earliest stop 4 windows into measurement.
fn converged_plan() -> RunPlan {
    RunPlan::fixed(WARMUP, MEASURE).until_converged(2_000, 0.5)
}

fn converged_session(spec: &SchemeSpec) -> SimSession<Box<dyn L2Org>> {
    let cfg = SystemConfig::tiny_test();
    SimSession::builder(cfg, spec.build(cfg))
        .streams(streams(&cfg))
        .plan(converged_plan())
        .build()
}

/// A two-shift phase-change schedule over the synthetic streams: an
/// all-core demand surge mid-measurement, then two cores swap to mcf's
/// model — the scenario family the stationary sweep never exercises.
fn shifts() -> Vec<StreamShift> {
    vec![
        StreamShift::all_cores(WARMUP + 8_000, ShiftDirective::DemandScale { percent: 250 }),
        StreamShift {
            at_cycle: WARMUP + 16_000,
            cores: vec![1, 3],
            directive: ShiftDirective::Profile { name: "mcf".into() },
        },
    ]
}

fn shifted_session(spec: &SchemeSpec) -> SimSession<Box<dyn L2Org>> {
    let cfg = SystemConfig::tiny_test();
    SimSession::builder(cfg, spec.build(cfg))
        .streams(streams(&cfg))
        .budget(WARMUP, MEASURE)
        .phase_shifts(shifts())
        .build()
}

/// A reconverged plan over the shifted workload: generous epsilon so
/// every scheme's streams re-stabilise inside the tiny window.
fn reconverged_session(spec: &SchemeSpec) -> SimSession<Box<dyn L2Org>> {
    let cfg = SystemConfig::tiny_test();
    SimSession::builder(cfg, spec.build(cfg))
        .streams(streams(&cfg))
        .plan(RunPlan::fixed(WARMUP, MEASURE).until_reconverged(2_000, 0.6))
        .phase_shifts(shifts())
        .build()
}

/// The 8-core variant of the tiny platform: twice the paper's core
/// count on the same tiny geometry, so every core-count-dependent path
/// — L2S address interleaving across 8 banks, CC/DSR peer scans, SNUG's
/// wide grouping and G/T vectors, the batched frontier's two-minima
/// scan — is exercised beyond the quad-core shape everything else in
/// this file pins.
fn cfg_8core() -> SystemConfig {
    SystemConfig {
        num_cores: 8,
        ..SystemConfig::tiny_test()
    }
}

/// Eight distinct benchmark models, one per core — mixed enough that
/// cores drift apart and the frontier order is non-trivial.
fn streams_8core(cfg: &SystemConfig) -> Vec<Box<dyn OpStream>> {
    [
        Benchmark::Ammp,
        Benchmark::Vortex,
        Benchmark::Art,
        Benchmark::Applu,
        Benchmark::Mcf,
        Benchmark::Parser,
        Benchmark::Swim,
        Benchmark::Mesa,
    ]
    .iter()
    .enumerate()
    .map(|(core, b)| Box::new(b.spec().stream(cfg.l2_slice, core)) as Box<dyn OpStream>)
    .collect()
}

fn session_8core(spec: &SchemeSpec) -> SimSession<Box<dyn L2Org>> {
    let cfg = cfg_8core();
    SimSession::builder(cfg, spec.build(cfg))
        .streams(streams_8core(&cfg))
        .budget(WARMUP, MEASURE)
        .build()
}

fn converged_session_8core(spec: &SchemeSpec) -> SimSession<Box<dyn L2Org>> {
    let cfg = cfg_8core();
    SimSession::builder(cfg, spec.build(cfg))
        .streams(streams_8core(&cfg))
        .plan(converged_plan())
        .build()
}

#[test]
fn eight_core_awkward_interleaving_matches_for_every_scheme() {
    for spec in schemes() {
        let expected = session_8core(&spec).run_to_completion();
        assert_eq!(
            expected.cores.len(),
            8,
            "{spec}: the result really is 8-core"
        );
        let mut s = session_8core(&spec);
        for _ in 0..500 {
            s.step();
        }
        for t in (0..WARMUP + MEASURE + 2_000).step_by(1_234) {
            s.run_until(t);
            s.step();
        }
        assert_eq!(s.run_to_completion(), expected, "{spec}");
    }
}

#[test]
fn phase_shifts_change_every_schemes_measured_behaviour() {
    for spec in schemes() {
        let stationary = reference(&spec);
        let shifted = shifted_session(&spec).run_to_completion();
        assert_ne!(shifted, stationary, "{spec}: the shifts must engage");
    }
}

#[test]
fn reconverged_policy_extends_past_the_last_shift_for_every_scheme() {
    let last_shift = shifts().last().unwrap().at_cycle;
    for spec in schemes() {
        let mut s = reconverged_session(&spec);
        let result = s.run_to_completion();
        let stop = s
            .stopped_at()
            .unwrap_or_else(|| panic!("{spec}: loose epsilon must re-converge"));
        assert!(
            stop > last_shift,
            "{spec}: stop {stop} extends past the last shift at {last_shift}"
        );
        assert!(stop < s.horizon(), "{spec}");
        assert!(result.throughput() > 0.0, "{spec}");
        let plateaus = s.phase_plateaus();
        assert_eq!(plateaus.len(), 3, "{spec}: one plateau per phase");
        assert!(
            plateaus.last().unwrap().converged(),
            "{spec}: the final phase re-stabilised"
        );
    }
}

#[test]
fn converged_policy_stops_every_scheme_early() {
    for spec in schemes() {
        let mut s = converged_session(&spec);
        let result = s.run_to_completion();
        let stop = s
            .stopped_at()
            .unwrap_or_else(|| panic!("{spec}: loose epsilon must converge"));
        assert!(stop < s.horizon(), "{spec}: stop {stop}");
        assert!(stop >= WARMUP + 4 * 2_000, "{spec}: full window first");
        assert!(result.throughput() > 0.0, "{spec}");
    }
}

#[test]
fn one_shot_wrapper_equals_session_for_every_scheme() {
    for spec in schemes() {
        let cfg = SystemConfig::tiny_test();
        let mut sys = CmpSystem::new(cfg, spec.build(cfg));
        let wrapper = sys.run(streams(&cfg), WARMUP, MEASURE);
        assert_eq!(wrapper, reference(&spec), "{spec}");
    }
}

#[test]
fn fixed_awkward_interleaving_matches_for_every_scheme() {
    for spec in schemes() {
        let expected = reference(&spec);
        let mut s = session(&spec);
        for _ in 0..500 {
            s.step();
        }
        for t in (0..WARMUP + MEASURE + 2_000).step_by(1_234) {
            s.run_until(t);
            s.step();
        }
        assert_eq!(s.run_to_completion(), expected, "{spec}");
    }
}

/// With observability compiled in, the counters of a run reconcile
/// with the measured result: ops retire, every retired op is exactly
/// one L1D lookup, and L2 activity balances the L1 misses feeding it.
#[cfg(feature = "obs")]
#[test]
fn counters_reconcile_with_the_measured_result_for_every_scheme() {
    for spec in schemes() {
        let mut s = session(&spec);
        let result = s.run_to_completion();
        let c = s.counters();
        assert!(c.retired_ops > 0, "{spec}: ops retired");
        assert_eq!(
            c.l1d_hits + c.l1d_misses,
            c.retired_ops,
            "{spec}: one L1D lookup per retired memory op"
        );
        assert_eq!(
            c.walk_samples(),
            c.l1i_hits + c.l1d_hits,
            "{spec}: every L1 hit lands in the walk-depth histogram"
        );
        assert!(
            c.l2_hits + c.l2_misses <= c.l1i_misses + c.l1d_misses,
            "{spec}: L2 lookups are fed by L1 misses"
        );
        assert!(result.throughput() > 0.0, "{spec}");
    }
}

/// Without observability compiled in, the session-side hot-path
/// tallies read zero — the zero-cost configuration records nothing on
/// the op path — while component statistics (which exist regardless of
/// the feature) are still harvested into the block.
#[cfg(not(feature = "obs"))]
#[test]
fn session_tallies_read_zero_with_obs_compiled_out() {
    for spec in schemes() {
        let mut s = session(&spec);
        s.run_to_completion();
        let c = s.counters();
        assert_eq!(c.retired_ops, 0, "{spec}");
        assert_eq!(c.walk_samples(), 0, "{spec}");
        assert_eq!(c.org_accesses, 0, "{spec}");
        assert_eq!(c.org_writebacks, 0, "{spec}");
        assert_eq!(c.relatches, 0, "{spec}");
        assert_eq!(c.identifies, 0, "{spec}");
        assert!(
            c.l1d_hits + c.l1d_misses > 0,
            "{spec}: component statistics are still harvested"
        );
    }
}

proptest! {
    /// Harvesting counters and enabling probe recording never perturb
    /// the retired op sequence, and the measured-window counters are
    /// identical across one-shot, interleaved, and
    /// snapshot → restore → resume driving (they travel with the
    /// snapshot). Holds with `obs` on or off — off, the counters
    /// compare as all-zero blocks and the result equalities still bite.
    #[test]
    fn counters_are_observational_and_snapshot_invariant(
        scheme_idx in 0usize..5,
        hops in proptest::collection::vec(1u64..9_000, 0..6),
        snap_at in 1u64..(WARMUP + MEASURE),
    ) {
        let spec = schemes()[scheme_idx];
        let expected = reference(&spec);
        let mut one_shot = session(&spec);
        prop_assert_eq!(one_shot.run_to_completion(), expected.clone());
        let expected_counters = one_shot.counters();

        // Probed + interleaved: same ops, same counters.
        let mut probed = session(&spec);
        probed.enable_recording(1_000);
        let mut cursor = 0;
        for hop in &hops {
            cursor += hop;
            probed.run_until(cursor);
            probed.step();
        }
        prop_assert_eq!(probed.run_to_completion(), expected.clone());
        prop_assert_eq!(probed.counters(), expected_counters);

        // Counter state travels with snapshots.
        let mut original = session(&spec);
        original.run_until(snap_at);
        let snap = original.snapshot().expect("streams snapshot");
        let mut restored = snap.to_session().expect("snapshot replays");
        prop_assert_eq!(restored.run_to_completion(), expected.clone());
        prop_assert_eq!(restored.counters(), expected_counters);
        prop_assert_eq!(original.run_to_completion(), expected);
        prop_assert_eq!(original.counters(), expected_counters);
    }

    /// Random step/run_until interleavings are bit-identical to the
    /// one-shot run for a randomly chosen scheme.
    #[test]
    fn interleaved_driving_is_bit_identical(
        scheme_idx in 0usize..5,
        step_runs in proptest::collection::vec(1usize..400, 0..6),
        hops in proptest::collection::vec(1u64..9_000, 0..8),
    ) {
        let spec = schemes()[scheme_idx];
        let expected = reference(&spec);
        let mut s = session(&spec);
        let mut cursor = 0;
        for (i, hop) in hops.iter().enumerate() {
            cursor += hop;
            s.run_until(cursor);
            if let Some(n) = step_runs.get(i) {
                for _ in 0..*n {
                    s.step();
                }
            }
        }
        prop_assert_eq!(s.run_to_completion(), expected);
    }

    /// Snapshot → restore → resume reproduces the uninterrupted run,
    /// wherever the snapshot is taken — before, at, or after the
    /// warm-up boundary.
    #[test]
    fn snapshot_restore_resume_is_bit_identical(
        scheme_idx in 0usize..5,
        snap_at in 1u64..(WARMUP + MEASURE),
    ) {
        let spec = schemes()[scheme_idx];
        let expected = reference(&spec);

        let mut original = session(&spec);
        original.run_until(snap_at);
        let snap = original.snapshot().expect("streams snapshot");

        // The original, resumed, still matches.
        prop_assert_eq!(original.run_to_completion(), expected.clone());

        // A session restored from the snapshot matches too.
        let mut restored = snap.to_session().expect("snapshot replays");
        prop_assert_eq!(restored.run_to_completion(), expected);
    }

    /// A mid-run phase shift under interleaved stepping and
    /// snapshot → restore → resume retires the identical op sequence as
    /// a one-shot run: shifts are frontier-derived and pending shifts
    /// travel with the snapshot.
    #[test]
    fn shifted_runs_are_interleaving_and_snapshot_invariant(
        scheme_idx in 0usize..5,
        hops in proptest::collection::vec(1u64..9_000, 0..8),
        step_runs in proptest::collection::vec(1usize..400, 0..6),
        snap_at in 1u64..(WARMUP + MEASURE),
    ) {
        let spec = schemes()[scheme_idx];
        let expected = shifted_session(&spec).run_to_completion();

        // Random interleaving.
        let mut interleaved = shifted_session(&spec);
        let mut cursor = 0;
        for (i, hop) in hops.iter().enumerate() {
            cursor += hop;
            interleaved.run_until(cursor);
            if let Some(n) = step_runs.get(i) {
                for _ in 0..*n {
                    interleaved.step();
                }
            }
        }
        prop_assert_eq!(interleaved.run_to_completion(), expected.clone());

        // Snapshot → restore → resume, snapped anywhere — before,
        // between, or after the scheduled shifts.
        let mut original = shifted_session(&spec);
        original.run_until(snap_at);
        let snap = original.snapshot().expect("synthetic streams snapshot");
        let mut restored = snap.to_session().expect("snapshot replays");
        prop_assert_eq!(restored.run_to_completion(), expected.clone());
        prop_assert_eq!(original.run_to_completion(), expected);
    }

    /// A `Reconverged`-policy shifted run latches the same extended stop
    /// cycle and the same per-phase plateau records in every
    /// interleaving and across snapshot → restore → resume.
    #[test]
    fn reconverged_stop_and_plateaus_are_interleaving_and_snapshot_invariant(
        scheme_idx in 0usize..5,
        hops in proptest::collection::vec(1u64..6_000, 0..6),
        snap_at in 1u64..(WARMUP + MEASURE),
    ) {
        let spec = schemes()[scheme_idx];
        let mut one_shot = reconverged_session(&spec);
        let expected = one_shot.run_to_completion();
        let expected_stop = one_shot.stopped_at();
        let expected_plateaus = one_shot.phase_plateaus();
        prop_assert!(expected_stop.is_some(), "loose epsilon re-converges");

        let mut interleaved = reconverged_session(&spec);
        let mut cursor = 0;
        for hop in &hops {
            cursor += hop;
            interleaved.run_until(cursor);
            interleaved.step();
        }
        prop_assert_eq!(interleaved.run_to_completion(), expected.clone());
        prop_assert_eq!(interleaved.stopped_at(), expected_stop);
        prop_assert_eq!(interleaved.phase_plateaus(), expected_plateaus.clone());

        let mut original = reconverged_session(&spec);
        original.run_until(snap_at);
        if original.stopped_at().is_none() {
            let snap = original.snapshot().expect("synthetic streams snapshot");
            let mut restored = snap.to_session().expect("snapshot replays");
            prop_assert_eq!(restored.run_to_completion(), expected.clone());
            prop_assert_eq!(restored.stopped_at(), expected_stop);
            prop_assert_eq!(restored.phase_plateaus(), expected_plateaus.clone());
        }
        prop_assert_eq!(original.run_to_completion(), expected);
        prop_assert_eq!(original.stopped_at(), expected_stop);
        prop_assert_eq!(original.phase_plateaus(), expected_plateaus);
    }

    /// The determinism contract holds at twice the paper's core count:
    /// random step/run_until interleavings and snapshot → restore →
    /// resume of the 8-core platform are bit-identical to its one-shot
    /// run for every scheme.
    #[test]
    fn eight_core_interleaving_and_snapshot_are_bit_identical(
        scheme_idx in 0usize..5,
        hops in proptest::collection::vec(1u64..9_000, 0..6),
        step_runs in proptest::collection::vec(1usize..300, 0..4),
        snap_at in 1u64..(WARMUP + MEASURE),
    ) {
        let spec = schemes()[scheme_idx];
        let expected = session_8core(&spec).run_to_completion();

        let mut interleaved = session_8core(&spec);
        let mut cursor = 0;
        for (i, hop) in hops.iter().enumerate() {
            cursor += hop;
            interleaved.run_until(cursor);
            if let Some(n) = step_runs.get(i) {
                for _ in 0..*n {
                    interleaved.step();
                }
            }
        }
        prop_assert_eq!(interleaved.run_to_completion(), expected.clone());

        let mut original = session_8core(&spec);
        original.run_until(snap_at);
        let snap = original.snapshot().expect("streams snapshot");
        let mut restored = snap.to_session().expect("snapshot replays");
        prop_assert_eq!(restored.run_to_completion(), expected.clone());
        prop_assert_eq!(original.run_to_completion(), expected);
    }

    /// The `Converged` policy is interleaving-invariant at 8 cores too:
    /// the stop cycle is a pure function of the frontier-derived
    /// observation sequence regardless of core count.
    #[test]
    fn eight_core_converged_stop_is_interleaving_invariant(
        scheme_idx in 0usize..5,
        hops in proptest::collection::vec(1u64..6_000, 0..6),
    ) {
        let spec = schemes()[scheme_idx];
        let mut one_shot = converged_session_8core(&spec);
        let expected = one_shot.run_to_completion();
        let expected_stop = one_shot.stopped_at();
        prop_assert!(expected_stop.is_some(), "loose epsilon converges");

        let mut interleaved = converged_session_8core(&spec);
        let mut cursor = 0;
        for hop in &hops {
            cursor += hop;
            interleaved.run_until(cursor);
            interleaved.step();
        }
        prop_assert_eq!(interleaved.run_to_completion(), expected);
        prop_assert_eq!(interleaved.stopped_at(), expected_stop);
    }

    /// A `Converged`-policy run stops at the same cycle and retires the
    /// identical op sequence (same `SystemResult`, same per-core
    /// instruction counts) whether driven one-shot, through a random
    /// interleaving of `run_until`/`step`, or through a mid-run
    /// snapshot → restore → resume — the estimator state travels with
    /// the snapshot.
    #[test]
    fn converged_stop_cycle_is_interleaving_and_snapshot_invariant(
        scheme_idx in 0usize..5,
        hops in proptest::collection::vec(1u64..6_000, 0..8),
        step_runs in proptest::collection::vec(1usize..300, 0..6),
        snap_at in 1u64..(WARMUP + MEASURE),
    ) {
        let spec = schemes()[scheme_idx];
        let mut one_shot = converged_session(&spec);
        let expected = one_shot.run_to_completion();
        let expected_stop = one_shot.stopped_at();
        prop_assert!(expected_stop.is_some(), "loose epsilon converges");

        // Random interleaving.
        let mut interleaved = converged_session(&spec);
        let mut cursor = 0;
        for (i, hop) in hops.iter().enumerate() {
            cursor += hop;
            interleaved.run_until(cursor);
            if let Some(n) = step_runs.get(i) {
                for _ in 0..*n {
                    interleaved.step();
                }
            }
        }
        prop_assert_eq!(interleaved.run_to_completion(), expected.clone());
        prop_assert_eq!(interleaved.stopped_at(), expected_stop);

        // Snapshot → restore → resume (and the original, resumed).
        let mut original = converged_session(&spec);
        original.run_until(snap_at);
        if original.stopped_at().is_none() {
            let snap = original.snapshot().expect("streams snapshot");
            let mut restored = snap.to_session().expect("snapshot replays");
            prop_assert_eq!(restored.run_to_completion(), expected.clone());
            prop_assert_eq!(restored.stopped_at(), expected_stop);
        }
        prop_assert_eq!(original.run_to_completion(), expected);
        prop_assert_eq!(original.stopped_at(), expected_stop);
    }
}
