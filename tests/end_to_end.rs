//! Cross-crate integration tests: full workload → CMP system → metrics
//! pipelines under every L2 organisation.

use sim_cmp::{CmpSystem, SystemConfig};
use sim_mem::OpStream;
use snug_core::{SchemeSpec, Snug};
use snug_experiments::{run_combo, run_scheme, CompareConfig};
use snug_metrics::{IpcVector, MetricSet};
use snug_workloads::{all_combos, Benchmark, ComboClass};

fn tiny_cfg() -> CompareConfig {
    let mut cfg = CompareConfig::quick();
    cfg.plan = snug_experiments::RunPlan::fixed(40_000, 250_000);
    cfg.snug.stage1_cycles = 20_000;
    cfg.snug.stage2_cycles = 80_000;
    cfg
}

#[test]
fn every_scheme_completes_a_mixed_combo() {
    let cfg = tiny_cfg();
    let combo = all_combos()
        .into_iter()
        .find(|c| c.class == ComboClass::C4)
        .unwrap();
    for spec in [
        SchemeSpec::L2p,
        SchemeSpec::L2s,
        SchemeSpec::Cc {
            spill_probability: 0.5,
        },
        SchemeSpec::Dsr(cfg.dsr),
        SchemeSpec::Snug(cfg.snug),
    ] {
        let r = run_scheme(&combo, &spec, &cfg);
        assert_eq!(r.cores.len(), 4);
        for core in &r.cores {
            assert!(core.ipc > 0.0, "{}: core produced no progress", r.scheme);
            assert!(core.cycles >= cfg.plan.measure_cycles() * 9 / 10);
        }
        assert!(r.l2.accesses() > 0, "{}: L2 never accessed", r.scheme);
    }
}

#[test]
fn run_combo_produces_all_figure_schemes() {
    let cfg = tiny_cfg();
    let combo = all_combos()[0];
    let r = run_combo(&combo, &cfg);
    for scheme in snug_experiments::FIGURE_SCHEMES {
        let m = r
            .metrics_of(scheme)
            .unwrap_or_else(|| panic!("{scheme} missing"));
        assert!(m.throughput > 0.1 && m.throughput < 3.0, "{scheme}: {m:?}");
    }
    assert_eq!(r.cc_sweep.len(), 5, "all five CC spill probabilities swept");
    let cc0 = r.cc_sweep.iter().find(|(p, _)| *p == 0.0).unwrap().1;
    let best = r.metrics_of("CC(Best)").unwrap().throughput;
    assert!(best >= cc0 - 1e-9, "CC(Best) at least as good as CC(0%)");
}

#[test]
fn snug_single_copy_invariant_after_full_run() {
    let cfg = tiny_cfg();
    let system = SystemConfig::paper();
    let mut sys = CmpSystem::new(system, Snug::new(system, cfg.snug));
    let combo = all_combos()[0];
    let streams: Vec<Box<dyn OpStream>> = combo
        .apps
        .iter()
        .enumerate()
        .map(|(core, b)| Box::new(b.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>)
        .collect();
    sys.run(streams, 50_000, 400_000);
    assert!(
        sys.org().chassis().single_copy_invariant(),
        "a block appeared in two slices simultaneously"
    );
    assert!(
        sys.org().events().periods >= 3,
        "several sampling periods elapsed"
    );
}

#[test]
fn identical_runs_are_deterministic() {
    let cfg = tiny_cfg();
    let combo = all_combos()[5];
    let a = run_scheme(&combo, &SchemeSpec::Snug(cfg.snug), &cfg);
    let b = run_scheme(&combo, &SchemeSpec::Snug(cfg.snug), &cfg);
    assert_eq!(a, b);
}

#[test]
fn snug_outperforms_baseline_on_the_c1_stress_test() {
    // The headline mechanism: 4 identical class-A programs, takers find
    // givers only through index-bit flipping.
    // Needs eval-scale sampling periods: the quick stage lengths starve
    // the monitors, so scaled runs sample continuously to keep fidelity.
    let mut cfg = CompareConfig::default_eval();
    cfg.plan = snug_experiments::RunPlan::fixed(cfg.plan.warmup_cycles, 4_500_000);
    let combo = all_combos()
        .into_iter()
        .find(|c| c.class == ComboClass::C1)
        .unwrap();
    let base = run_scheme(&combo, &SchemeSpec::L2p, &cfg);
    let snug = run_scheme(&combo, &SchemeSpec::Snug(cfg.snug), &cfg);
    let m = MetricSet::compute(&IpcVector::new(snug.ipcs()), &IpcVector::new(base.ipcs()));
    assert!(
        m.throughput > 1.0,
        "SNUG must beat L2P on the stress test, got {:.3}",
        m.throughput
    );
    assert!(snug.l2.spills_out > 0, "taker sets spilled");
    assert!(
        snug.l2.retrieved_from_peer > 0,
        "spilled victims were retrieved"
    );
}

#[test]
fn snug_refrains_from_spilling_on_uniform_high_demand() {
    // C2: every set is a taker → no givers → SNUG stays close to L2P
    // with almost no spilling (paper: −0.2 %).
    let cfg = tiny_cfg();
    let combo = all_combos()
        .into_iter()
        .find(|c| c.class == ComboClass::C2)
        .unwrap();
    let snug = run_scheme(&combo, &SchemeSpec::Snug(cfg.snug), &cfg);
    let spill_rate = snug.l2.spills_out as f64 / snug.l2.misses.max(1) as f64;
    assert!(
        spill_rate < 0.25,
        "uniform high demand should leave few giver targets, spill rate {spill_rate:.2}"
    );
}

#[test]
fn metrics_pipeline_matches_hand_computation() {
    let base = IpcVector::new(vec![0.5, 0.5, 1.0, 1.0]);
    let scheme = IpcVector::new(vec![0.6, 0.5, 1.0, 1.2]);
    let m = MetricSet::compute(&scheme, &base);
    assert!((m.throughput - 3.3 / 3.0).abs() < 1e-12);
    assert!((m.aws - (1.2 + 1.0 + 1.0 + 1.2) / 4.0).abs() < 1e-12);
}

#[test]
fn workload_streams_respect_their_class_footprint() {
    // Integration of workloads + sim-cache: a class-D app fits its slice
    // (high L2 hit rate); a class-C app does not.
    let system = SystemConfig::paper();
    let run_single = |b: Benchmark| {
        let mut l2 = sim_cache::SetAssocCache::new(system.l2_slice);
        let mut stream = b.spec().stream(system.l2_slice, 0);
        for _ in 0..300_000 {
            let op = stream.next_op();
            let block = op.access.addr.block(64);
            l2.access(block, op.access.kind.is_write());
        }
        l2.stats().hit_ratio()
    };
    let gzip = run_single(Benchmark::Gzip);
    let mcf = run_single(Benchmark::Mcf);
    assert!(gzip > 0.95, "gzip fits: {gzip:.3}");
    assert!(mcf < 0.85, "mcf thrashes: {mcf:.3}");
    assert!(gzip > mcf + 0.15);
}
