//! Integration tests for the beyond-paper extensions and the trace
//! capture/replay plumbing.

use sim_cmp::{CmpSystem, L2Org, SystemConfig};
use sim_mem::{Geometry, OpStream, Trace, VecStream};
use snug_core::{Cc, DsrConfig, SchemeSpec, Snug, SnugConfig};
use snug_workloads::Benchmark;

/// Capture a synthetic stream into a trace and replay it: the system
/// must behave identically on the generator and on the recorded trace.
#[test]
fn trace_replay_reproduces_generator_run() {
    let system = SystemConfig::paper();
    let bench = Benchmark::Apsi;

    // Record each core's op stream.
    let mut traces = Vec::new();
    for core in 0..4 {
        let mut stream = bench.spec().stream(system.l2_slice, core);
        let mut t = Trace::new();
        for _ in 0..120_000 {
            t.push(stream.next_op());
        }
        // Round-trip through the binary framing as well.
        traces.push(Trace::from_bytes(t.to_bytes()).expect("decode"));
    }

    let run = |streams: Vec<Box<dyn OpStream>>| {
        let mut sys = CmpSystem::new(system, Snug::new(system, SnugConfig::scaled(500)));
        sys.run(streams, 30_000, 200_000)
    };

    let live: Vec<Box<dyn OpStream>> = (0..4)
        .map(|core| Box::new(bench.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>)
        .collect();
    let replayed: Vec<Box<dyn OpStream>> = traces
        .iter()
        .map(|t| Box::new(VecStream::cycle("apsi", t.ops.clone())) as Box<dyn OpStream>)
        .collect();

    let a = run(live);
    let b = run(replayed);
    assert_eq!(a.l2, b.l2, "identical L2 behaviour from trace replay");
    for (x, y) in a.cores.iter().zip(&b.cores) {
        assert_eq!(x.instructions, y.instructions);
        assert_eq!(x.cycles, y.cycles);
    }
}

/// The whole stack is generic over core count: an 8-core system with
/// SNUG runs and keeps the single-copy invariant.
#[test]
fn eight_core_system_works() {
    let mut cfg = SystemConfig::paper();
    cfg.num_cores = 8;
    let mut snug_cfg = SnugConfig::scaled(500);
    snug_cfg.stage1_cycles = 60_000;
    snug_cfg.stage2_cycles = 300_000;
    let mut sys = CmpSystem::new(cfg, Snug::new(cfg, snug_cfg));
    let streams: Vec<Box<dyn OpStream>> = (0..8)
        .map(|core| {
            let b = if core % 2 == 0 {
                Benchmark::Ammp
            } else {
                Benchmark::Gzip
            };
            Box::new(b.spec().stream(cfg.l2_slice, core)) as Box<dyn OpStream>
        })
        .collect();
    let r = sys.run(streams, 300_000, 1_200_000);
    assert_eq!(r.cores.len(), 8);
    assert!(r.cores.iter().all(|c| c.ipc > 0.0));
    assert!(sys.org().chassis().single_copy_invariant());
    assert!(r.l2.spills_out > 0, "8-core SNUG cooperates too");
}

/// N-chance CC keeps more victims on chip than 1-chance under receiver
/// pressure, and never breaks the single-copy invariant.
#[test]
fn n_chance_cc_extends_victim_lifetimes() {
    let system = SystemConfig::paper();
    let run = |chances: u32| {
        let mut sys = CmpSystem::new(system, Cc::with_chances(system, 1.0, chances));
        let streams: Vec<Box<dyn OpStream>> = (0..4)
            .map(|core| {
                Box::new(Benchmark::Ammp.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>
            })
            .collect();
        let r = sys.run(streams, 300_000, 1_200_000);
        assert!(sys.org().chassis().single_copy_invariant());
        r.l2
    };
    let one = run(1);
    let three = run(3);
    assert!(
        one.spills_out > 100,
        "the stress test spills: {}",
        one.spills_out
    );
    assert!(
        three.spills_out > one.spills_out,
        "re-spills add spill traffic: {} vs {}",
        three.spills_out,
        one.spills_out
    );
}

/// Wider flip widths can only increase SNUG's placed-spill count on the
/// stress test (more candidate givers per spill).
#[test]
fn wider_flipping_places_at_least_as_many_spills() {
    let system = SystemConfig::paper();
    let run = |width: u32| {
        let mut cfg = SnugConfig::scaled(500);
        cfg.flip_width = width;
        let mut sys = CmpSystem::new(system, Snug::new(system, cfg));
        let streams: Vec<Box<dyn OpStream>> = (0..4)
            .map(|core| {
                Box::new(Benchmark::Ammp.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>
            })
            .collect();
        let r = sys.run(streams, 300_000, 1_200_000);
        assert!(sys.org().chassis().single_copy_invariant());
        (r.l2.spills_out, sys.org().events().spills_unplaced)
    };
    let (placed1, unplaced1) = run(1);
    let (placed3, unplaced3) = run(3);
    assert!(
        placed3 + 50 >= placed1,
        "width 3 places no fewer spills: {placed3} vs {placed1}"
    );
    assert!(
        unplaced3 <= unplaced1,
        "width 3 leaves no more spills unplaced: {unplaced3} vs {unplaced1}"
    );
}

/// The factory covers every organisation and their names are stable —
/// downstream tables key on them.
#[test]
fn factory_names_are_table_keys() {
    let cfg = SystemConfig::tiny_test();
    for (spec, name) in [
        (SchemeSpec::L2p, "L2P"),
        (SchemeSpec::L2s, "L2S"),
        (SchemeSpec::Dsr(DsrConfig::tiny()), "DSR"),
        (SchemeSpec::Snug(SnugConfig::scaled(1000)), "SNUG"),
    ] {
        assert_eq!(spec.build(cfg).name(), name);
    }
}

/// Geometry plumbing: streams built for a non-paper geometry stay within
/// its set space (the generator is not hard-coded to 1024 sets).
#[test]
fn streams_adapt_to_geometry() {
    let geo = Geometry::new(64, 256, 8);
    let mut s = Benchmark::Vpr.spec().stream(geo, 0);
    for _ in 0..10_000 {
        let op = s.next_op();
        let set = geo.set_index(op.access.addr.block(64));
        assert!(set < 256);
    }
}
