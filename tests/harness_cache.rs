//! Integration tests for the snug-harness result cache: results served
//! from the content-addressed store are bit-identical to fresh runs,
//! across processes (the store is re-opened from disk) and across the
//! JSON encode/decode boundary; a scheme-config edit re-runs only that
//! scheme's unit jobs; and v1 store entries migrate into v2 units.

use snug_harness::{
    cached_results, legacy_combo_key, run_sweep, run_unit_jobs, unit_jobs_for, BudgetPreset,
    JsonCodec, ResultStore, StoredResult, SweepEvent, SweepSpec,
};
use snug_sim::experiments::{run_combo, SchemePoint};
use snug_workloads::ComboClass;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snug-harness-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_spec() -> SweepSpec {
    SweepSpec {
        name: "it-c5".into(),
        classes: vec![ComboClass::C5],
        combos: Vec::new(),
        budget: BudgetPreset::Custom {
            warmup_cycles: 15_000,
            measure_cycles: 80_000,
        },
        stop: snug_harness::StopPreset::Fixed,
        phase_shift: None,
        shared_warmup: false,
    }
}

const UNITS: usize = SchemePoint::COUNT;

#[test]
fn cached_combo_results_are_bit_identical_to_fresh_runs() {
    let spec = tiny_spec();
    let dir = tmp_dir("bit-identity");

    // First sweep: everything executes.
    let mut store = ResultStore::open(&dir).unwrap();
    let first = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
    assert_eq!(first.executed, 3 * UNITS, "C5: three combos of nine units");
    assert_eq!(first.cache_hits, 0);
    drop(store);

    // Second sweep from a store re-opened off disk: all cache hits.
    let mut reopened = ResultStore::open(&dir).unwrap();
    let mut hits_reported = None;
    let second = run_sweep(&spec, &mut reopened, 2, |e| {
        if let SweepEvent::Planned { total, hits, .. } = e {
            hits_reported = Some((total, hits));
        }
    })
    .unwrap();
    assert_eq!(
        hits_reported,
        Some((3 * UNITS, 3 * UNITS)),
        "second run plans zero executions"
    );
    assert_eq!(second.executed, 0);
    assert!(second.combos.iter().all(|c| c.from_cache));

    // The decoded results equal the stored ones bit-for-bit (ComboResult
    // is PartialEq over f64s — exact equality, not approximate).
    assert_eq!(second.results(), first.results());

    // ... and both equal a from-scratch simulation of the same combos.
    let cfg = spec.compare_config();
    for (job, outcome) in spec.combo_jobs().iter().zip(second.combos.iter()) {
        let fresh = run_combo(&job.combo, &cfg);
        assert_eq!(outcome.result, fresh, "{}", job.combo.label());
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_boundary_preserves_every_float_bit() {
    // Run one real combo and push it through the store codec: the IPCs
    // and metrics are arbitrary f64s produced by the simulator, so this
    // exercises float round-tripping on realistic values.
    let spec = tiny_spec();
    let jobs = spec.combo_jobs();
    let job = &jobs[0];
    let result = run_combo(&job.combo, &job.config);
    let decoded = snug_sim::experiments::ComboResult::from_json(
        &snug_harness::json::parse(&result.to_json().render()).unwrap(),
    )
    .unwrap();
    assert_eq!(decoded, result);
    for (a, b) in decoded.baseline_ipcs.iter().zip(&result.baseline_ipcs) {
        assert_eq!(a.to_bits(), b.to_bits(), "bit-exact IPC");
    }
}

#[test]
fn report_from_cache_matches_report_from_run() {
    let spec = tiny_spec();
    let dir = tmp_dir("report-match");
    let mut store = ResultStore::open(&dir).unwrap();
    let outcome = run_sweep(&spec, &mut store, 0, |_| {}).unwrap();
    let md_fresh = snug_harness::render_markdown(&spec, &outcome.results());

    let reopened = ResultStore::open(&dir).unwrap();
    let cached = cached_results(&spec, &reopened).expect("sweep just ran");
    let md_cached = snug_harness::render_markdown(&spec, &cached);
    assert_eq!(
        md_fresh, md_cached,
        "identical report, including every throughput digit"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snug_config_edit_reruns_only_snug_units() {
    let spec = tiny_spec();
    let dir = tmp_dir("scheme-edit");
    let mut store = ResultStore::open(&dir).unwrap();
    run_sweep(&spec, &mut store, 0, |_| {}).unwrap();

    // Edit SNUG's stage lengths only: of the 27 C5 units, exactly the 3
    // SNUG points must re-run.
    let mut edited = spec.compare_config();
    edited.snug.stage2_cycles += 1;
    let jobs: Vec<_> = spec
        .combos()
        .iter()
        .flat_map(|combo| unit_jobs_for(combo, &edited))
        .collect();
    let outcomes = run_unit_jobs(&jobs, &mut store, 0, &mut |_| {}).unwrap();
    let executed: Vec<&str> = outcomes
        .iter()
        .zip(&jobs)
        .filter(|(o, _)| !o.from_cache)
        .map(|(o, _)| o.run.scheme.as_str())
        .collect();
    assert_eq!(executed, vec!["snug"; 3], "only the SNUG units re-ran");
    assert_eq!(
        outcomes.iter().filter(|o| o.from_cache).count(),
        3 * UNITS - 3
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_store_entries_migrate_and_round_trip() {
    let spec = tiny_spec();
    let cfg = spec.compare_config();
    let dir = tmp_dir("v1-migration");

    // Build a v1-format store by hand: one legacy combo entry per C5
    // combo, exactly as PR 1's harness would have written it.
    let mut store = ResultStore::open(&dir).unwrap();
    let fresh: Vec<_> = spec
        .combos()
        .iter()
        .map(|combo| {
            let result = run_combo(combo, &cfg);
            store
                .insert(
                    legacy_combo_key(combo, &cfg),
                    format!("{combo:?} | {cfg:?}"),
                    StoredResult::Combo(result.clone()),
                )
                .unwrap();
            result
        })
        .collect();
    drop(store);

    // A sweep over the reopened store migrates the provable units —
    // L2P, L2S, DSR, SNUG and the winning CC point (5 of 9 per combo) —
    // and re-runs only the four losing CC points per combo.
    let mut reopened = ResultStore::open(&dir).unwrap();
    assert_eq!(reopened.legacy_count(), 3);
    let mut planned = None;
    let outcome = run_sweep(&spec, &mut reopened, 0, |e| {
        if let SweepEvent::Planned {
            total,
            hits,
            migrated,
        } = e
        {
            planned = Some((total, hits, migrated));
        }
    })
    .unwrap();
    assert_eq!(planned, Some((3 * UNITS, 3 * 5, 3 * 5)));
    assert_eq!(outcome.migrated, 15);
    assert_eq!(outcome.cache_hits, 15);
    assert_eq!(outcome.executed, 12, "four losing CC points per combo");

    // Round trip: the assembled results are bit-identical to the v1
    // originals — migration changed the storage granularity, not one
    // simulated number.
    assert_eq!(outcome.results(), fresh);

    // And the store is now fully v2 for this spec: a further sweep runs
    // nothing.
    let again = run_sweep(&spec, &mut reopened, 0, |_| {}).unwrap();
    assert_eq!(again.executed, 0);
    assert_eq!(again.migrated, 0);
    assert_eq!(again.cache_hits, 3 * UNITS);

    std::fs::remove_dir_all(&dir).unwrap();
}
