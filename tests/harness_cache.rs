//! Integration test for the snug-harness result cache: results served
//! from the content-addressed store are bit-identical to fresh runs,
//! across processes (the store is re-opened from disk) and across the
//! JSON encode/decode boundary.

use snug_harness::{
    cached_results, job_key, run_sweep, BudgetPreset, JsonCodec, ResultStore, SweepEvent, SweepSpec,
};
use snug_sim::experiments::run_combo;
use snug_workloads::ComboClass;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snug-harness-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_spec() -> SweepSpec {
    SweepSpec {
        name: "it-c5".into(),
        classes: vec![ComboClass::C5],
        combos: Vec::new(),
        budget: BudgetPreset::Custom {
            warmup_cycles: 15_000,
            measure_cycles: 80_000,
        },
    }
}

#[test]
fn cached_combo_results_are_bit_identical_to_fresh_runs() {
    let spec = tiny_spec();
    let dir = tmp_dir("bit-identity");

    // First sweep: everything executes.
    let mut store = ResultStore::open(&dir).unwrap();
    let first = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
    assert_eq!(first.executed, 3, "C5 has three combos");
    assert_eq!(first.cache_hits, 0);
    drop(store);

    // Second sweep from a store re-opened off disk: all cache hits.
    let mut reopened = ResultStore::open(&dir).unwrap();
    let mut hits_reported = None;
    let second = run_sweep(&spec, &mut reopened, 2, |e| {
        if let SweepEvent::Planned { total, hits } = e {
            hits_reported = Some((total, hits));
        }
    })
    .unwrap();
    assert_eq!(
        hits_reported,
        Some((3, 3)),
        "second run plans zero executions"
    );
    assert_eq!(second.executed, 0);
    assert!(second.jobs.iter().all(|j| j.from_cache));

    // The decoded results equal the stored ones bit-for-bit (ComboResult
    // is PartialEq over f64s — exact equality, not approximate).
    assert_eq!(second.results(), first.results());

    // ... and both equal a from-scratch simulation of the same jobs.
    let cfg = spec.compare_config();
    for (job, outcome) in spec.jobs().iter().zip(second.jobs.iter()) {
        let fresh = run_combo(&job.combo, &cfg);
        assert_eq!(outcome.result, fresh, "{}", job.combo.label());
        assert_eq!(outcome.key, job_key(&job.combo, &cfg));
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_boundary_preserves_every_float_bit() {
    // Run one real combo and push it through the store codec: the IPCs
    // and metrics are arbitrary f64s produced by the simulator, so this
    // exercises float round-tripping on realistic values.
    let spec = tiny_spec();
    let job = &spec.jobs()[0];
    let result = run_combo(&job.combo, &job.config);
    let decoded = snug_sim::experiments::ComboResult::from_json(
        &snug_harness::json::parse(&result.to_json().render()).unwrap(),
    )
    .unwrap();
    assert_eq!(decoded, result);
    for (a, b) in decoded.baseline_ipcs.iter().zip(&result.baseline_ipcs) {
        assert_eq!(a.to_bits(), b.to_bits(), "bit-exact IPC");
    }
}

#[test]
fn report_from_cache_matches_report_from_run() {
    let spec = tiny_spec();
    let dir = tmp_dir("report-match");
    let mut store = ResultStore::open(&dir).unwrap();
    let outcome = run_sweep(&spec, &mut store, 0, |_| {}).unwrap();
    let md_fresh = snug_harness::render_markdown(&spec, &outcome.results());

    let reopened = ResultStore::open(&dir).unwrap();
    let cached = cached_results(&spec, &reopened).expect("sweep just ran");
    let md_cached = snug_harness::render_markdown(&spec, &cached);
    assert_eq!(
        md_fresh, md_cached,
        "identical report, including every throughput digit"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
