//! Empirical calibration of the `--mid` budget (see ISSUE 2 / ROADMAP).
//!
//! Runs the full 21-combo five-scheme comparison under several candidate
//! (budget, SNUG stage) configurations and prints, for each, the
//! per-class and average Fig. 9 geomeans plus whether the paper's
//! qualitative ordering — SNUG ≥ DSR ≥ CC > L2P with L2S worst on the
//! capacity-hungry classes — holds. The winner became
//! `CompareConfig::mid()` / `BudgetPreset::Mid`.
//!
//! ```sh
//! cargo run --release --example calibrate_mid            # short list
//! cargo run --release --example calibrate_mid -- --all   # every candidate
//! ```

use snug_sim::experiments::{run_combo, summarize, CompareConfig, Figure, RunPlan};
use snug_sim::workloads::all_combos;
use std::time::Instant;

/// SNUG-only probe: fix the mid budget, sweep stage lengths, and print
/// SNUG's per-class Fig. 9 geomeans (L2P baseline re-run per combo).
/// DSR/CC do not depend on the SNUG stages, so their mid-budget numbers
/// from the main probe are the comparison targets.
fn snug_stage_probe() {
    use snug_sim::experiments::run_scheme;
    use snug_sim::metrics::{geomean, IpcVector};
    // (warmup, measure, stage1, stage2)
    let stage_candidates: &[(u64, u64, u64, u64)] = &[
        (300_000, 3_000_000, 5_000, 295_000),
        (300_000, 3_000_000, 8_000, 292_000),
        (400_000, 4_000_000, 10_000, 390_000),
        (400_000, 4_000_000, 10_000, 290_000),
        (500_000, 4_500_000, 10_000, 290_000),
    ];
    for &(warmup, measure, s1, s2) in stage_candidates {
        let cfg = config_for(&Candidate {
            name: "probe",
            warmup,
            measure,
            stage1: s1,
            stage2: s2,
        });
        let start = Instant::now();
        let mut per_class: Vec<(String, Vec<f64>)> = Vec::new();
        for combo in all_combos() {
            let base = run_scheme(
                &combo,
                &snug_sim::experiments::SchemePoint::L2p.spec(&cfg),
                &cfg,
            );
            let snug = run_scheme(
                &combo,
                &snug_sim::experiments::SchemePoint::Snug.spec(&cfg),
                &cfg,
            );
            let tp =
                IpcVector::new(snug.ipcs()).throughput() / IpcVector::new(base.ipcs()).throughput();
            let name = combo.class.name().to_string();
            match per_class.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => v.push(tp),
                None => per_class.push((name, vec![tp])),
            }
        }
        let all_vals: Vec<f64> = per_class.iter().flat_map(|(_, v)| v.clone()).collect();
        print!(
            "budget {warmup}+{measure} stages {s1}/{s2} ({} periods): ",
            measure / (s1 + s2)
        );
        for (name, vals) in &per_class {
            print!("{name} {:.3}  ", geomean(vals));
        }
        println!(
            "AVG {:.3}  [{:.0}s]",
            geomean(&all_vals),
            start.elapsed().as_secs_f64()
        );
    }
}

struct Candidate {
    name: &'static str,
    warmup: u64,
    measure: u64,
    stage1: u64,
    stage2: u64,
}

fn config_for(c: &Candidate) -> CompareConfig {
    let mut cfg = CompareConfig::quick();
    cfg.plan = RunPlan::fixed(c.warmup, c.measure);
    cfg.snug.stage1_cycles = c.stage1;
    cfg.snug.stage2_cycles = c.stage2;
    cfg.snug.continuous_sampling = true;
    cfg
}

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    if std::env::args().any(|a| a == "--snug-stages") {
        snug_stage_probe();
        return;
    }
    let mut candidates = vec![
        Candidate {
            name: "eval-reference",
            warmup: 600_000,
            measure: 6_300_000,
            stage1: 150_000,
            stage2: 1_350_000,
        },
        Candidate {
            // The shipped `CompareConfig::mid()` numbers: keep in sync.
            name: "mid-shipped",
            warmup: 300_000,
            measure: 3_000_000,
            stage1: 10_000,
            stage2: 290_000,
        },
    ];
    if all {
        candidates.extend([
            Candidate {
                name: "mid-4p-1125k",
                warmup: 400_000,
                measure: 4_500_000,
                stage1: 150_000,
                stage2: 975_000,
            },
            Candidate {
                name: "mid-2p-1500k",
                warmup: 300_000,
                measure: 3_000_000,
                stage1: 150_000,
                stage2: 1_350_000,
            },
            Candidate {
                name: "small-4p-500k",
                warmup: 200_000,
                measure: 2_000_000,
                stage1: 100_000,
                stage2: 400_000,
            },
        ]);
    }

    for cand in &candidates {
        let cfg = config_for(cand);
        let start = Instant::now();
        let results: Vec<_> = all_combos().iter().map(|c| run_combo(c, &cfg)).collect();
        let elapsed = start.elapsed();
        let summary = summarize(&results, Figure::Throughput);

        println!(
            "\n=== {} (warmup {} + measure {}, stages {}/{}) — {:.1}s ===",
            cand.name,
            cand.warmup,
            cand.measure,
            cand.stage1,
            cand.stage2,
            elapsed.as_secs_f64()
        );
        println!(
            "{:<6} {:>8} {:>10} {:>8} {:>8}  ordering",
            "class", "L2S", "CC(Best)", "DSR", "SNUG"
        );
        for row in &summary {
            let get = |name: &str| {
                row.values
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            let (l2s, cc, dsr, snug) = (get("L2S"), get("CC(Best)"), get("DSR"), get("SNUG"));
            let verdict = if snug >= dsr && dsr >= cc && cc > 1.0 && l2s < cc {
                "SNUG>=DSR>=CC>L2P"
            } else if snug >= dsr && snug > 1.0 {
                "SNUG>=DSR"
            } else {
                "-"
            };
            println!(
                "{:<6} {:>8.3} {:>10.3} {:>8.3} {:>8.3}  {}",
                row.class, l2s, cc, dsr, snug, verdict
            );
        }

        // One representative probed session per candidate so budget
        // choices can also be compared on simulator activity, not just
        // the figure geomeans.
        let combos = all_combos();
        let combo = &combos[0];
        let mut session = snug_sim::experiments::session_for(
            combo,
            &snug_sim::experiments::SchemePoint::Snug.spec(&cfg),
            &cfg,
        );
        session.run_to_completion();
        println!(
            "counters [SNUG | {}]: {}",
            combo.label(),
            session.counters().summary()
        );
    }
}
