//! Reproduce the C1 stress test in isolation: four identical copies of a
//! class-A application (set-level non-uniform demand, no data sharing).
//!
//! This is the case where SNUG's index-bit flipping is the *only* way to
//! find givers — every cache has the same taker sets at the same
//! indices, so same-index grouping (Fig. 8 case 1) never matches.
//! Compare the flipping-enabled and flipping-disabled variants to see
//! the mechanism carrying the entire gain.
//!
//! ```sh
//! cargo run --release --example stress_test            # ammp
//! cargo run --release --example stress_test -- parser
//! ```

use sim_cmp::{CmpSystem, SystemConfig};
use sim_mem::OpStream;
use snug_core::{SchemeSpec, Snug, SnugConfig};
use snug_experiments::{CompareConfig, RunPlan};
use snug_metrics::{IpcVector, MetricSet};
use snug_workloads::Benchmark;

fn run(bench: Benchmark, spec: &SchemeSpec, plan: &RunPlan) -> Vec<f64> {
    let system = SystemConfig::paper();
    let org = spec.build(system);
    let mut sys = CmpSystem::new(system, org);
    let streams: Vec<Box<dyn OpStream>> = (0..4)
        .map(|core| Box::new(bench.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>)
        .collect();
    sys.run(streams, plan.warmup_cycles, plan.measure_cycles())
        .ipcs()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ammp".into());
    let bench = Benchmark::from_name(&name).expect("unknown benchmark");
    assert_eq!(
        bench.class(),
        snug_workloads::AppClass::A,
        "C1 stress tests use class-A applications"
    );
    let plan = CompareConfig::default_eval_plan();
    println!(
        "C1 stress test: 4 × {} (class A), {} measured cycles\n",
        name,
        plan.measure_cycles()
    );

    let base = IpcVector::new(run(bench, &SchemeSpec::L2p, &plan));
    println!("L2P baseline throughput: {:.3}", base.throughput());

    let mut snug_on = SnugConfig::scaled(100);
    snug_on.flipping = true;
    let mut snug_off = snug_on;
    snug_off.flipping = false;

    for (label, spec) in [
        (
            "CC(100%)",
            SchemeSpec::Cc {
                spill_probability: 1.0,
            },
        ),
        ("DSR", SchemeSpec::Dsr(snug_core::DsrConfig::paper())),
        ("SNUG (flipping ON)", SchemeSpec::Snug(snug_on)),
        ("SNUG (flipping OFF)", SchemeSpec::Snug(snug_off)),
    ] {
        let ipcs = IpcVector::new(run(bench, &spec, &plan));
        let m = MetricSet::compute(&ipcs, &base);
        println!(
            "{label:<20} throughput {:.3}  ({:+.1} %)   AWS {:.3}   FS {:.3}",
            m.throughput,
            (m.throughput - 1.0) * 100.0,
            m.aws,
            m.fair
        );
    }

    // Show the flipping machinery directly.
    let system = SystemConfig::paper();
    let mut sys = CmpSystem::new(system, Snug::new(system, snug_on));
    let streams: Vec<Box<dyn OpStream>> = (0..4)
        .map(|core| Box::new(bench.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>)
        .collect();
    sys.run(streams, plan.warmup_cycles, plan.measure_cycles());
    let ev = sys.org().events();
    println!("\nSNUG spill placement in the stress test:");
    println!("  same-index spills : {}", ev.spills_same_index);
    println!("  flipped spills    : {}", ev.spills_flipped);
    println!("  unplaced          : {}", ev.spills_unplaced);
    println!("(same-index spills are rare by construction: every cache has the");
    println!(" same taker sets, so only the flipped neighbour can be a giver)");
    println!("\ncounter summary: {}", sys.counters().summary());
}
