//! Reproduce Figures 1–3: the distribution of set-level capacity demand
//! over sampling intervals for ammp, vortex and applu (plus any other
//! benchmark by name).
//!
//! Prints a compact stacked-distribution view and writes the full
//! per-interval series as CSV next to the binary.
//!
//! ```sh
//! cargo run --release --example characterize_demand            # ammp vortex applu, scaled
//! cargo run --release --example characterize_demand -- --paper # full 1000×100K plan
//! cargo run --release --example characterize_demand -- mcf gzip
//! ```

use snug_experiments::{characterize, CharacterizeConfig};
use snug_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let benches: Vec<Benchmark> = if names.is_empty() {
        vec![Benchmark::Ammp, Benchmark::Vortex, Benchmark::Applu]
    } else {
        names
            .iter()
            .map(|n| Benchmark::from_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
            .collect()
    };
    // The paper's plan is 1000 intervals × 100 K accesses; the scaled
    // default (100 × 20 K) keeps the shape at a fraction of the cost.
    let cfg = if paper {
        CharacterizeConfig::paper()
    } else {
        CharacterizeConfig::scaled(100, 20_000)
    };

    for bench in benches {
        eprintln!("characterizing {} ...", bench.name());
        let c = characterize(bench, &cfg);
        println!("\n=== {} — set-level capacity demand ===", c.benchmark);
        println!(
            "mean low-demand (1-4 blocks): {:.1} %   above-baseline (>16): {:.1} %   spread: {:.2}",
            c.mean_low_demand() * 100.0,
            c.mean_above_baseline(16) * 100.0,
            c.mean_spread()
        );
        // Compact stacked view: one row per 10% of the run.
        println!(
            "\ninterval  | {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
            "1-4", "5-8", "9-12", "13-16", "17-20", "21-24", "25-28", ">=29"
        );
        let step = (c.intervals.len() / 10).max(1);
        for (i, d) in c.intervals.iter().enumerate().step_by(step) {
            print!("{:>9} |", i + 1);
            for s in &d.sizes {
                print!(" {:>4.0}%", s * 100.0);
            }
            println!();
        }
        let path = format!("fig_{}_demand.csv", c.benchmark);
        std::fs::write(&path, c.to_csv()).expect("write csv");
        println!("\nfull series written to {path}");
    }
}
