//! Reproduce Figures 9–11: the five-scheme comparison over the paper's
//! 21 workload combinations (Table 8), reported per class C1–C6 with
//! geometric means, all normalised to L2P.
//!
//! ```sh
//! cargo run --release --example scheme_comparison            # full run
//! cargo run --release --example scheme_comparison -- --quick # smoke run
//! ```

use snug_experiments::{figure_table, run_all, summarize, CompareConfig, Figure};
use snug_workloads::all_combos;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        CompareConfig::quick()
    } else {
        CompareConfig::default_eval()
    };
    let combos = all_combos();
    eprintln!(
        "running {} combos × 8 simulations (L2P + L2S + 5×CC + DSR + SNUG), {} measured cycles each...",
        combos.len(),
        cfg.plan.measure_cycles()
    );
    let t0 = std::time::Instant::now();
    let results = run_all(&combos, &cfg, 0);
    eprintln!("done in {:.1} s\n", t0.elapsed().as_secs_f64());

    for fig in [Figure::Throughput, Figure::Aws, Figure::FairSpeedup] {
        let summary = summarize(&results, fig);
        println!("{}", figure_table(&summary, fig).to_markdown());
    }

    // Per-combo detail (appendix-style).
    println!("### Per-combination normalised throughput\n");
    println!("| combo | class | L2S | CC(Best) | DSR | SNUG |");
    println!("|---|---|---|---|---|---|");
    for r in &results {
        print!("| {} | {} ", r.label, r.class.name());
        for scheme in snug_experiments::FIGURE_SCHEMES {
            print!("| {:.3} ", r.metrics_of(scheme).unwrap().throughput);
        }
        println!("|");
    }
}
