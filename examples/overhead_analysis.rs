//! Reproduce the storage-overhead analysis of §3.4 (Formula 6) and
//! Tables 2–3.
//!
//! ```sh
//! cargo run --release --example overhead_analysis
//! ```

use snug_core::{table3, OverheadParams};

fn main() {
    let p = OverheadParams::paper();
    println!("=== Table 2 configuration (32-bit addr, 64 B lines, 1 MB, 16-way) ===");
    println!("sets            : {}", p.num_sets());
    println!("tag bits        : {}", p.tag_bits());
    println!("LRU bits        : {}", p.lru_bits());
    println!("shadow set bits : {}", p.shadow_set_bits());
    println!("L2 set bits     : {}", p.l2_set_bits());
    println!(
        "storage overhead: {:.2} %   (paper §3.4: 3.9 %)",
        p.storage_overhead() * 100.0
    );

    println!("\n=== Table 3: overhead across address width × line size ===");
    println!("| line size | 32-bit address | 64-bit address (44 used) |");
    println!("|---|---|---|");
    let rows = table3();
    for &block in &[64u64, 128] {
        let find = |addr: u32| {
            rows.iter()
                .find(|(a, b, _)| *a == addr && *b == block)
                .map(|(_, _, o)| o * 100.0)
                .unwrap()
        };
        println!("| {block} B | {:.1} % | {:.1} % |", find(32), find(44));
    }
    println!("\npaper Table 3: 64 B → 3.9 % / 5.8 %;  128 B → 2.1 % / 3.1 %");

    println!("\n=== Sensitivity: overhead vs monitor counter width k ===");
    for k in [2u32, 3, 4, 5, 6] {
        let p = OverheadParams {
            counter_bits: k,
            ..OverheadParams::paper()
        };
        println!("k = {k}: {:.3} %", p.storage_overhead() * 100.0);
    }
}
