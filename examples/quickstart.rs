//! Quickstart: build a quad-core CMP with a SNUG L2, run a mixed
//! workload, and print what the cache organisation did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sim_cmp::{CmpSystem, SystemConfig};
use sim_mem::OpStream;
use snug_core::{Snug, SnugConfig};
use snug_workloads::Benchmark;

fn main() {
    // The paper's Table 4 platform.
    let system = SystemConfig::paper();

    // SNUG with the paper's monitor parameters; sampling periods scaled
    // down 100× (we run millions, not billions, of cycles).
    let snug = Snug::new(system, SnugConfig::scaled(100));

    // A C4-style mix: two set-level non-uniform apps (class A), one
    // class-B and one class-C app (paper Table 8).
    let apps = [
        Benchmark::Ammp,
        Benchmark::Parser,
        Benchmark::Apsi,
        Benchmark::Bzip2,
    ];
    let streams: Vec<Box<dyn OpStream>> = apps
        .iter()
        .enumerate()
        .map(|(core, b)| Box::new(b.spec().stream(system.l2_slice, core)) as Box<dyn OpStream>)
        .collect();

    let mut sys = CmpSystem::new(system, snug);
    println!("running 4.2M cycles on the SNUG quad-core...");
    let result = sys.run(streams, 500_000, 4_200_000);

    println!("\nper-core results:");
    for (i, core) in result.cores.iter().enumerate() {
        println!(
            "  core {i}: {:8} [{:<7}] IPC {:.3}  ({} instrs / {} cycles)",
            core.label,
            apps[i].class_name(),
            core.ipc,
            core.instructions,
            core.cycles
        );
    }
    println!("\nthroughput (sum of IPCs): {:.3}", result.throughput());

    let l2 = &result.l2;
    println!("\naggregate L2 behaviour:");
    println!("  demand accesses : {}", l2.accesses());
    println!("  hit ratio       : {:.1} %", l2.hit_ratio() * 100.0);
    println!("  spills out      : {}", l2.spills_out);
    println!("  peer retrievals : {}", l2.retrieved_from_peer);
    println!("  shadow hits     : {}", l2.shadow_hits);

    let snug = sys.org();
    let ev = snug.events();
    println!("\nSNUG events:");
    println!("  sampling periods     : {}", ev.periods);
    println!("  spills (same index)  : {}", ev.spills_same_index);
    println!("  spills (flipped bit) : {}", ev.spills_flipped);
    println!("  spills unplaced      : {}", ev.spills_unplaced);
    for core in 0..4 {
        println!(
            "  core {core} G/T vector   : {} taker sets / {}",
            snug.gt(core).taker_count(),
            snug.gt(core).len()
        );
    }
}

/// Small display helper for the quickstart output.
trait ClassName {
    fn class_name(&self) -> &'static str;
}

impl ClassName for Benchmark {
    fn class_name(&self) -> &'static str {
        match self.class() {
            snug_workloads::AppClass::A => "class A",
            snug_workloads::AppClass::B => "class B",
            snug_workloads::AppClass::C => "class C",
            snug_workloads::AppClass::D => "class D",
            snug_workloads::AppClass::Streaming => "stream",
        }
    }
}
