//! C1 stage-length sweep: does SNUG's short-period stranding explain
//! the CC(Best) gap?
//!
//! ROADMAP's C1 hypothesis, built from `snug trace` evidence: at the
//! calibrated `--mid` stage lengths (10 K + 290 K cycles) taker
//! identification ramps over several sampling periods and spilled
//! blocks are rarely retrieved before the next G/T relatch strands
//! them. This example keeps the fixed `--mid` budget and sweeps the
//! SNUG `stage1`/`stage2` lengths on the three C1 combos, recording for
//! each point:
//!
//! * SNUG throughput normalised to L2P, and the gap to CC(Best)
//!   (the §4.1 per-combo oracle over five spill probabilities);
//! * the taker ramp — the cycle at which the latched taker-set count
//!   first reaches half its run maximum, and that maximum as a
//!   fraction of all 4 × 1024 sets.
//!
//! ```sh
//! cargo run --release --example stage_sweep
//! ```

use snug_sim::experiments::{best_cc_index, run_point, session_for, CompareConfig, SchemePoint};
use snug_sim::metrics::{IpcVector, MetricSet};
use snug_sim::workloads::{all_combos, ComboClass};

/// (stage1, stage2) candidates at the fixed --mid budget. The first row
/// is the calibrated default; the rest stretch the sampling period
/// (fewer G/T relatches per window) and the identification stage.
const CANDIDATES: [(u64, u64); 6] = [
    (10_000, 290_000),
    (10_000, 590_000),
    (10_000, 1_490_000),
    (30_000, 270_000),
    (30_000, 570_000),
    (50_000, 950_000),
];

struct StagePoint {
    stage1: u64,
    stage2: u64,
    snug_tp: f64,
    gap_vs_cc: f64,
    ramp_half_cycle: Option<u64>,
    peak_taker_fraction: f64,
}

fn sweep_combo(combo: &snug_sim::workloads::Combo, cfg: &CompareConfig) -> (f64, Vec<StagePoint>) {
    let base = IpcVector::new(run_point(combo, &SchemePoint::L2p, cfg).ipcs);
    // CC(Best): the §4.1 oracle — run the spill sweep, keep the winner.
    let cc_sweep: Vec<(f64, f64)> = SchemePoint::all()
        .into_iter()
        .filter_map(|p| match p {
            SchemePoint::Cc { spill_probability } => {
                let run = run_point(combo, &p, cfg);
                let m = MetricSet::compute(&IpcVector::new(run.ipcs), &base);
                Some((spill_probability, m.throughput))
            }
            _ => None,
        })
        .collect();
    let cc_best = cc_sweep[best_cc_index(&cc_sweep).expect("non-empty sweep")].1;

    let total_sets = (cfg.system.num_cores as u64) * cfg.system.l2_slice.num_sets;
    let points = CANDIDATES
        .iter()
        .map(|&(stage1, stage2)| {
            let mut tuned = *cfg;
            tuned.snug.stage1_cycles = stage1;
            tuned.snug.stage2_cycles = stage2;
            let mut session = session_for(combo, &SchemePoint::Snug.spec(&tuned), &tuned);
            session.enable_recording(100_000);
            let result = session.run_to_completion();
            let m = MetricSet::compute(&IpcVector::new(result.ipcs()), &base);

            // The taker ramp, from the G/T relatch events: each
            // GroupedBegin latches per-core taker-set counts.
            let latches: Vec<(u64, u64)> = session
                .take_series()
                .iter()
                .flat_map(|s| s.events.clone())
                .filter(|e| e.kind == sim_cmp::SchemeEventKind::GroupedBegin)
                .map(|e| (e.cycle, e.takers.iter().map(|&t| t as u64).sum()))
                .collect();
            let peak = latches.iter().map(|&(_, t)| t).max().unwrap_or(0);
            let ramp_half_cycle = latches
                .iter()
                .find(|&&(_, t)| 2 * t >= peak && peak > 0)
                .map(|&(c, _)| c);
            StagePoint {
                stage1,
                stage2,
                snug_tp: m.throughput,
                gap_vs_cc: cc_best - m.throughput,
                ramp_half_cycle,
                peak_taker_fraction: peak as f64 / total_sets as f64,
            }
        })
        .collect();
    (cc_best, points)
}

fn main() {
    let cfg = CompareConfig::mid();
    let combos: Vec<_> = all_combos()
        .into_iter()
        .filter(|c| c.class == ComboClass::C1)
        .collect();
    println!(
        "C1 stage sweep at the fixed --mid budget ({} + {} cycles)\n",
        cfg.plan.warmup_cycles,
        cfg.plan.measure_cycles()
    );
    for combo in &combos {
        let (cc_best, points) = sweep_combo(combo, &cfg);
        println!("{} — CC(Best) {:.3}", combo.label(), cc_best);
        println!(
            "  {:>8} {:>9} {:>8} {:>8} {:>10} {:>7}",
            "stage1", "stage2", "snug_tp", "gap", "ramp50@", "takers"
        );
        for p in points {
            println!(
                "  {:>8} {:>9} {:>8.3} {:>+8.3} {:>10} {:>6.1}%",
                p.stage1,
                p.stage2,
                p.snug_tp,
                -p.gap_vs_cc,
                p.ramp_half_cycle
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "never".into()),
                p.peak_taker_fraction * 100.0
            );
        }
        println!();
    }
    println!("(gap column is SNUG − CC(Best): negative means the oracle still leads)");
}
