//! Empirical calibration of the eval-scale convergence knobs (ISSUE 7).
//!
//! The committed `EXPERIMENTS_EVAL.md` is rendered from a converged
//! `--eval` sweep, so the window/epsilon pair has to be picked *at eval
//! scale* — the `--mid` defaults were tuned against a 3 M-cycle ceiling
//! and a window that is too fine at 6.3 M cycles stops runs on noise
//! while one that is too coarse saves nothing. This example runs the
//! full sweep through the real harness path (`run_sweep`, including
//! baseline pacing and the parallel executor) for each candidate pair
//! and prints, per candidate:
//!
//! * the Fig. 9 geomeans for SNUG and CC(Best) and their maximum
//!   absolute deviation from the fixed-budget eval reference,
//! * how many combos converged vs hit the ceiling, and
//! * the simulated-cycle saving against the fixed budget.
//!
//! The winner became `EVAL_CONVERGED_WINDOW` /
//! `EVAL_CONVERGED_REL_EPSILON` in `snug_harness::experiments_md`.
//! Each candidate caches under `target/calibrate-eval/`, so re-runs
//! are incremental.
//!
//! ```sh
//! cargo run --release --example calibrate_eval
//! ```

use snug_sim::experiments::{pace_of, summarize, Figure, SchemePoint, StopReason};
use snug_sim::harness::{run_sweep, BudgetPreset, ResultStore, StopPreset, SweepSpec};
use std::path::PathBuf;
use std::time::Instant;

struct Candidate {
    name: &'static str,
    window: u64,
    eps: f64,
}

fn eval_spec(stop: StopPreset) -> SweepSpec {
    let mut spec = SweepSpec::full(BudgetPreset::Eval);
    spec.stop = stop;
    spec
}

/// Run (or serve from its candidate-local cache) one full eval sweep
/// and return `(results, simulated, budgeted, ceilings)`.
fn run(name: &str, spec: &SweepSpec) -> (Vec<snug_sim::experiments::ComboResult>, u64, u64, usize) {
    let dir = PathBuf::from("target/calibrate-eval").join(name);
    let mut store = ResultStore::open(&dir).expect("open candidate store");
    let outcome = run_sweep(spec, &mut store, 0, |_| {}).expect("sweep runs");
    let ceilings = if spec.compare_config().plan.can_stop_early() {
        spec.combo_jobs()
            .iter()
            .filter(|job| {
                job.units
                    .iter()
                    .find(|u| u.point == SchemePoint::L2p)
                    .and_then(|u| store.get_unit(&u.key))
                    .map(|run| pace_of(run, &job.config).stop_reason == StopReason::Ceiling)
                    .unwrap_or(false)
            })
            .count()
    } else {
        0
    };
    let results = outcome.combos.iter().map(|c| c.result.clone()).collect();
    (
        results,
        outcome.simulated_cycles,
        outcome.budgeted_cycles,
        ceilings,
    )
}

fn avg_row(results: &[snug_sim::experiments::ComboResult]) -> Vec<(String, f64)> {
    summarize(results, Figure::Throughput)
        .into_iter()
        .find(|row| row.class == "AVG")
        .map(|row| row.values)
        .expect("summary has an AVG row")
}

fn main() {
    let started = Instant::now();
    println!("fixed eval reference (cached after the first run)...");
    let (reference, _, _, _) = run("fixed", &eval_spec(StopPreset::Fixed));
    let ref_avg = avg_row(&reference);
    print!("fixed AVG:");
    for (name, v) in &ref_avg {
        print!("  {name} {v:.3}");
    }
    println!("  [{:.0}s]", started.elapsed().as_secs_f64());

    let candidates = [
        Candidate {
            name: "w315k-e02",
            window: 315_000,
            eps: 0.02,
        },
        Candidate {
            name: "w630k-e02",
            window: 630_000,
            eps: 0.02,
        },
        Candidate {
            name: "w630k-e01",
            window: 630_000,
            eps: 0.01,
        },
        Candidate {
            name: "w1260k-e02",
            window: 1_260_000,
            eps: 0.02,
        },
    ];
    for cand in &candidates {
        let t = Instant::now();
        let spec = eval_spec(StopPreset::Converged {
            window_cycles: Some(cand.window),
            rel_epsilon: Some(cand.eps),
        });
        let (results, simulated, budgeted, ceilings) = run(cand.name, &spec);
        let avg = avg_row(&results);
        let max_dev = avg
            .iter()
            .zip(&ref_avg)
            .map(|((_, v), (_, r))| (v - r).abs())
            .fold(0.0_f64, f64::max);
        let saved = 100.0 * (1.0 - simulated as f64 / budgeted as f64);
        print!(
            "window {:>8} eps {:<5} | ceilings {ceilings:>2}/21 | saved {saved:>5.1}% | \
             max |Δ| vs fixed {max_dev:.4} |",
            cand.window, cand.eps
        );
        for (name, v) in &avg {
            print!("  {name} {v:.3}");
        }
        println!("  [{:.0}s]", t.elapsed().as_secs_f64());
    }
}
